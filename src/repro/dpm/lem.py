"""The Local Energy Manager (LEM).

One LEM is attached to each IP (paper, section 1.3).  Its job:

* when the IP requests a task execution, forward the request to the GEM (if
  present), wait for the GEM enable, *estimate the battery status and chip
  temperature at the end of the task*, and select the execution state with
  the policy's rules (Table 1).  If the rules answer a sleep state — the
  battery is empty or the chip is too hot for a non-critical task — the task
  is *deferred*: the IP is parked in that sleep state and the situation is
  re-evaluated periodically until an ON state is selected;
* when the IP becomes inactive, predict the idle time, compare it with the
  break-even time of each low-power state and switch the PSM to the deepest
  state that pays off (or apply the fixed timeout, for timeout policies);
* keep a per-task decision log used by the analysis layer.

The LEM is where all the flexibility of the architecture lives (the paper
keeps the GEM intentionally simple): rules, predictor, policy and the
break-even analysis are all injectable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.battery.model import Battery
from repro.dpm.levels import BusLevel, RuleContext
from repro.dpm.policies import DpmPolicy, RuleBasedPolicy
from repro.dpm.predictor import IdlePredictor, default_predictor
from repro.errors import ConfigurationError
from repro.power.breakeven import BreakEvenAnalyzer
from repro.power.characterization import PowerCharacterization
from repro.power.psm import PowerStateMachine
from repro.power.states import PowerState
from repro.sim.event import Event
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.process import AnyOf
from repro.sim.simtime import SimTime, us
from repro.soc.task import Task, TaskPriority
from repro.thermal.model import ThermalModel

__all__ = ["LemConfig", "TaskGrant", "LemDecision", "LocalEnergyManager"]


@dataclass
class LemConfig:
    """Tunable parameters of a Local Energy Manager."""

    #: how often a deferred task re-evaluates the rules (battery/temperature
    #: conditions change slowly compared with task durations)
    reevaluation_interval: SimTime = us(200)
    #: whether the LEM may use the soft-off state for long idle periods
    allow_off: bool = True
    #: state used to park the IP while a task is deferred by the rules
    defer_state: PowerState = PowerState.SL1
    #: state assumed when estimating the energy/duration of the next task
    estimation_state: PowerState = PowerState.ON1

    def __post_init__(self) -> None:
        if self.reevaluation_interval.is_zero:
            raise ConfigurationError("re-evaluation interval must be positive")
        if self.defer_state.is_on:
            raise ConfigurationError("the defer state must be a sleep/off state")
        if not self.estimation_state.is_on:
            raise ConfigurationError("the estimation state must be an ON state")


@dataclass
class TaskGrant:
    """Handle returned to the IP for one task request."""

    task: Task
    event: Event
    request_time: SimTime
    granted: bool = False
    state: Optional[PowerState] = None


@dataclass
class LemDecision:
    """Log entry describing how one task request was resolved."""

    task_name: str
    priority: TaskPriority
    battery: str
    temperature: str
    selected_state: PowerState
    request_time: SimTime
    grant_time: SimTime
    deferrals: int = 0
    bus: str = "low"

    @property
    def waiting_time(self) -> SimTime:
        """Time the request waited before being granted."""
        return self.grant_time - self.request_time


@dataclass
class _IdleRecord:
    """Bookkeeping for one idle period."""

    start: SimTime
    hint: Optional[SimTime] = None
    sequence: int = 0


class LocalEnergyManager(Module):
    """Per-IP energy manager implementing the paper's LEM."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        ip_name: str,
        psm: PowerStateMachine,
        characterization: PowerCharacterization,
        battery: Battery,
        thermal: ThermalModel,
        breakeven: BreakEvenAnalyzer,
        policy: Optional[DpmPolicy] = None,
        predictor: Optional[IdlePredictor] = None,
        gem=None,
        bus=None,
        static_priority: int = 1,
        config: Optional[LemConfig] = None,
        parent: Optional[Module] = None,
        fast: bool = False,
    ) -> None:
        super().__init__(kernel, name, parent)
        if static_priority < 1:
            raise ConfigurationError("static priority must be >= 1 (1 is the highest)")
        self.ip_name = ip_name
        self.psm = psm
        self.characterization = characterization
        self.battery = battery
        self.thermal = thermal
        self.bus = bus
        self.breakeven = breakeven
        self.policy = policy or RuleBasedPolicy()
        self.predictor = predictor or default_predictor()
        self.gem = gem
        self.static_priority = static_priority
        self.config = config or LemConfig()
        self.decisions: List[LemDecision] = []
        self.sleep_decisions = 0
        self.deferral_count = 0
        self._pending_grant: Optional[TaskGrant] = None
        self._executing = False
        self._request_event = self.event("task_request")
        # One reusable grant event: requests are strictly sequential (the
        # LEM rejects overlapping requests), so each grant's wait/notify pair
        # finishes before the next one starts.
        self._grant_event = self.event("grant")
        self._idle_event = self.event("idle_start")
        self._idle_record: Optional[_IdleRecord] = None
        self._idle_sequence = 0
        self._last_completion: Optional[SimTime] = None
        # Fast accuracy mode: the straight-line request path (enabled, rules
        # answer an ON state) is served inline at submit time, with the
        # grant finalised by a transition_complete callback instead of a
        # process wake; idle decisions run from a delta-event callback.  The
        # request-serving process remains for the deferral/disabled paths,
        # and the idle process remains for timeout policies (which wait).
        self._fast = fast
        self._fast_awaiting: Optional[tuple] = None
        self._fast_estimate: Optional[tuple] = None
        # Context-estimate memo: the projection in _estimate_context is a
        # pure function of the task shape and the observed battery/thermal
        # state, so identical inputs give a bit-identical RuleContext (it is
        # frozen, hence safely shared).  Keyed only on bus-less platforms —
        # bus occupancy decays with wall-clock time and would need the clock
        # in the key.
        self._context_cache: dict = {}
        if fast:
            psm._completion_hooks.append(self._fast_grant_on_complete)
            self._fast_idle_event = self.event("idle_decide")
            self._fast_idle_event.add_callback(self._fast_idle_decision)
            # GEM scenarios serve via a delta-event callback: it runs after
            # every same-instant submission/registration (exactly when the
            # serving process would have run) without the process wake.
            self._fast_serve_event = self.event("serve_step")
            self._fast_serve_event.add_callback(self._fast_serve_step)
        self.add_thread(self._serve_requests, name="serve")
        if not (fast and not self.policy.uses_timeout):
            self.add_thread(self._manage_idle, name="idle")
        if self.gem is not None:
            self.gem.register_lem(self, static_priority)

    #: structured-tracing hook (repro.obs); None keeps every hook site to a
    #: single attribute test, so untraced runs stay bit-identical
    _tracer = None

    # ------------------------------------------------------------------
    # IP-facing interface
    # ------------------------------------------------------------------
    def submit_task_request(self, task: Task) -> TaskGrant:
        """Called by the IP before executing ``task``; returns the grant handle."""
        if self._pending_grant is not None:
            raise ConfigurationError(
                f"LEM {self.name!r} already has an outstanding request; "
                "IPs execute one task at a time"
            )
        now = self.kernel.now
        # Close the current idle period and train the predictor with it.
        if self._last_completion is not None:
            actual_idle = now - self._last_completion
            self.predictor.update(actual_idle)
        self._idle_sequence += 1
        self._idle_record = None
        grant = TaskGrant(task=task, event=self._grant_event, request_time=now)
        self._pending_grant = grant
        if self.gem is not None:
            estimated = self._estimate_task_energy(task)
            self.gem.register_request(self.ip_name, estimated)
        if self._fast:
            if self.gem is None:
                if self._fast_submit(grant):
                    return grant
            else:
                # Always defer to the delta callback: it runs after every
                # same-instant submission has registered with the GEM
                # (exactly when the serving process would run), so another
                # IP submitting at the same femtosecond is still reflected
                # in this request's pending-energy estimate.
                self._fast_serve_event.notify_delta()
                return grant
        self._request_event.notify()
        return grant

    # ------------------------------------------------------------------
    # Fast-mode inline serving
    # ------------------------------------------------------------------
    def _fast_submit(self, grant: TaskGrant) -> bool:
        """Serve the straight-line request path inline; False to delegate.

        Only without a GEM: a grant is then invisible to every other IP, and
        the serving process would run within the same simulated instant and
        observe exactly the same battery/thermal state, so estimating and
        starting the PSM transition here changes no figure and no event
        time — only the number of kernel activations.  With a GEM, granting
        inline would reorder the grant against other IPs' same-instant
        submissions (the pending-rank sequence the GEM sees), so the
        process path is kept.
        """
        if self.gem is not None:
            return False
        return self._fast_try_grant(grant)

    def _fast_serve_step(self) -> None:
        """Delta-callback serve step for GEM scenarios.

        Falls back to the serving process for the paths that need to wait
        and re-evaluate (GEM-disabled, rule deferrals); the process then
        re-estimates within the same simulated instant, so its decisions
        and their timing are unchanged.
        """
        grant = self._pending_grant
        if grant is None or grant.granted or self._fast_awaiting is not None:
            return
        if self.gem is not None and not self.gem.is_enabled(self.ip_name):
            self._request_event.notify()
            return
        if not self._fast_try_grant(grant):
            self._request_event.notify()

    def _fast_try_grant(self, grant: TaskGrant) -> bool:
        """Estimate, select and grant (or await the transition); shared tail
        of the two inline fast paths.  False means the rules answered a
        sleep state — a deferral the serving process must own (it runs the
        periodic re-evaluation loop)."""
        context = self._estimate_context(grant.task)
        selected = self.policy.select_on_state(context)
        if not selected.is_on:
            return False
        psm = self.psm
        if psm.state is not selected or psm.is_transitioning:
            psm.request_state(selected)
            if psm.state is not selected or psm.is_transitioning:
                # Grant when the in-flight transition lands (callback).
                self._fast_awaiting = (grant, selected, context, 0)
                return True
        self._finalize_grant(grant, selected, context, 0)
        return True

    def _fast_grant_on_complete(self) -> None:
        """transition_complete callback: finalise a waiting inline grant."""
        awaiting = self._fast_awaiting
        if awaiting is None:
            return
        grant, selected, context, deferrals = awaiting
        psm = self.psm
        if psm.state is not selected or psm.is_transitioning:
            return  # another transition is still in flight; keep waiting
        self._fast_awaiting = None
        self._finalize_grant(grant, selected, context, deferrals)

    def _finalize_grant(self, grant: TaskGrant, selected, context, deferrals: int) -> None:
        grant.state = selected
        grant.granted = True
        self._pending_grant = None
        self._executing = True
        if self.gem is not None:
            self.gem.note_request_served(self.ip_name)
        if not self._fast:
            # The decision log is an analysis artefact; fast mode keeps the
            # counters but skips the per-task record (documented).
            self.decisions.append(
                LemDecision(
                    task_name=grant.task.name,
                    priority=grant.task.priority,
                    battery=str(context.battery),
                    temperature=str(context.temperature),
                    selected_state=selected,
                    request_time=grant.request_time,
                    grant_time=self.kernel.now,
                    deferrals=deferrals,
                    bus=str(context.bus),
                )
            )
        tracer = self._tracer
        if tracer is not None:
            now_fs = self.kernel.now_fs
            tracer.emit(
                now_fs, "lem.decision", self.ip_name,
                task=grant.task.name,
                state=str(selected),
                priority=str(grant.task.priority),
                battery=str(context.battery),
                temperature=str(context.temperature),
                bus=str(context.bus),
                deferrals=deferrals,
                wait_us=(now_fs - int(grant.request_time)) / 1e9,
                other_ip_energy_j=context.other_ip_energy_j,
            )
        grant.event.notify()

    def _fast_idle_decision(self) -> None:
        """Delta-event callback replacing the idle process (non-timeout)."""
        record = self._idle_record
        if record is None or self._idle_sequence != record.sequence:
            return
        use_hint = record.hint is not None and getattr(self.policy, "uses_idle_hint", False)
        predicted = record.hint if use_hint else self.predictor.predict()
        target = self.policy.select_idle_state(predicted, self.breakeven)
        if target is None:
            return
        if self._idle_sequence != record.sequence:  # pragma: no cover - defensive
            return
        if not self.config.allow_off and target.is_off:
            target = PowerState.SL4
        psm = self.psm
        if psm.state is not target and not psm.is_transitioning:
            psm.request_state(target)
            self.sleep_decisions += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.kernel.now_fs, "lem.sleep", self.ip_name,
                            state=str(target), reason="idle")

    def notify_task_complete(self, task: Task, next_idle_hint: Optional[SimTime] = None) -> None:
        """Called by the IP right after ``task`` finished executing."""
        now = self.kernel.now
        self._last_completion = now
        self._executing = False
        if self.gem is not None:
            self.gem.clear_request(self.ip_name)
        self._idle_sequence += 1
        self._idle_record = _IdleRecord(start=now, hint=next_idle_hint, sequence=self._idle_sequence)
        idle_event = self._idle_event
        if idle_event._waiters or idle_event._callbacks:
            idle_event.notify()
        if self._fast and not self.policy.uses_timeout:
            if next_idle_hint is not None and int(next_idle_hint) > 0:
                # A positive idle hint guarantees the IP yields before its
                # next submission, so the decision can run inline: nothing
                # can bump the idle sequence within this instant.
                self._fast_idle_decision()
            else:
                # Decide in the next delta cycle (after the IP's activation
                # has run on — it may submit the next task back-to-back,
                # which the sequence check must see first, exactly as the
                # process variant would).
                self._fast_idle_event.notify_delta()

    # ------------------------------------------------------------------
    # GEM-facing interface
    # ------------------------------------------------------------------
    @property
    def is_busy(self) -> bool:
        """True while the IP has a pending or running task."""
        return self._pending_grant is not None or self._executing

    @property
    def has_pending_request(self) -> bool:
        """True while a task request is waiting for its grant."""
        return self._pending_grant is not None

    def force_low_power(self, state: PowerState) -> None:
        """GEM request to park the IP in ``state`` (only honoured while idle).

        If the IP is already in a sleep or off state the request is a no-op:
        the GEM's intent is to stop the IP from running, not to wake it out
        of a deeper (cheaper) state it reached on its own.
        """
        if state.is_on:
            raise ConfigurationError("the GEM can only force sleep/off states")
        if self.is_busy or not self.psm.state.is_on:
            return
        if self.psm.state is not state and not self.psm.is_transitioning:
            self.psm.request_state(state)
            self.sleep_decisions += 1
            tracer = self._tracer
            if tracer is not None:
                tracer.emit(self.kernel.now_fs, "lem.sleep", self.ip_name,
                            state=str(state), reason="forced")

    # ------------------------------------------------------------------
    # Estimation helpers
    # ------------------------------------------------------------------
    def _estimate_task_energy(self, task: Task) -> float:
        cached = self._fast_estimate
        if cached is not None and cached[0] is task:
            return cached[1]
        value = self.characterization.task_energy_j(
            self.config.estimation_state, task.cycles, task.instruction_class
        )
        if self._fast:
            # The GEM registration and the serve step estimate the same task
            # back to back; reusing the identical float is bit-safe.
            self._fast_estimate = (task, value)
        return value

    #: Entry bound for the context-estimate memo; the whole table is dropped
    #: when it fills (scenario state walks through few distinct keys, so a
    #: full table means the keys stopped repeating anyway).
    _CONTEXT_CACHE_MAX = 512

    def _estimate_context(self, task: Task) -> RuleContext:
        """Project battery and temperature to the end of the task (section 1.3).

        On bus-less platforms the result is memoised: the projection is
        recomputed only when the task shape, the co-pending GEM energy, or
        the observed battery/thermal state actually changed.  The sync hooks
        run *before* the state is read for the key — exactly the replay that
        :meth:`~repro.battery.model.Battery.level_if_drawn` and
        :meth:`~repro.thermal.model.ThermalModel.estimate_after` would have
        triggered — so a cache hit observes the same state a recomputation
        would, and the recomputation itself is deterministic: hit or miss is
        bit-for-bit the same answer.
        """
        other_energy = 0.0
        if self.gem is not None:
            other_energy = self.gem.pending_energy_excluding(self.ip_name)
        if self.bus is None:
            battery = self.battery
            thermal = self.thermal
            if battery._sync_hook is not None:
                battery._sync_hook()
            if thermal._sync_hook is not None:
                thermal._sync_hook()
            key = (
                task.cycles,
                task.instruction_class,
                task.priority,
                other_energy,
                battery._remaining_j,
                thermal._temperature_c,
                thermal._fan_on,
            )
            context = self._context_cache.get(key)
            if context is None:
                context = self._compute_context(task, other_energy)
                if len(self._context_cache) >= self._CONTEXT_CACHE_MAX:
                    self._context_cache.clear()
                self._context_cache[key] = context
            return context
        return self._compute_context(task, other_energy)

    def _compute_context(self, task: Task, other_energy: float) -> RuleContext:
        own_energy = self._estimate_task_energy(task)
        own_duration = self.characterization.execution_time(self.config.estimation_state, task.cycles)
        battery_level = self.battery.level_if_drawn(own_energy + other_energy)
        own_duration_s = own_duration.seconds
        own_power = own_energy / own_duration_s if own_duration_s > 0 else 0.0
        other_power = other_energy / own_duration_s if own_duration_s > 0 else 0.0
        projected_c = self.thermal.estimate_after(own_power + other_power, own_duration)
        temperature_level = self.thermal.config.thresholds.classify(projected_c)
        bus = self.bus
        return RuleContext(
            priority=task.priority,
            battery=battery_level,
            temperature=temperature_level,
            other_ip_energy_j=other_energy,
            bus=BusLevel.LOW if bus is None else bus.occupancy_level(),
        )

    # ------------------------------------------------------------------
    # Request serving process
    # ------------------------------------------------------------------
    def _serve_requests(self):
        while True:
            if self._pending_grant is None:
                yield self._request_event
                continue
            grant = self._pending_grant
            deferrals = 0
            while True:
                # 1. Wait for the GEM enable (if a GEM is present).
                while self.gem is not None and not self.gem.is_enabled(self.ip_name):
                    yield AnyOf([self.gem.enable_changed, self._reeval_timer()])
                # 2. Apply the rules; a sleep answer defers the task.
                context = self._estimate_context(grant.task)
                selected = self.policy.select_on_state(context)
                if selected.is_on:
                    break
                deferrals += 1
                self.deferral_count += 1
                tracer = self._tracer
                if tracer is not None:
                    tracer.emit(
                        self.kernel.now_fs, "lem.deferral", self.ip_name,
                        task=grant.task.name, state=str(self.config.defer_state),
                    )
                if self.psm.state is not self.config.defer_state and not self.psm.is_transitioning:
                    self.psm.request_state(self.config.defer_state)
                yield self._reeval_timer()
            # 3. Move the PSM to the selected ON state and grant.
            if self.psm.state is not selected or self.psm.is_transitioning:
                self.psm.request_state(selected)
                yield from self.psm.wait_for_state(selected)
            self._finalize_grant(grant, selected, context, deferrals)

    def _reeval_timer(self) -> Event:
        """A one-shot event that fires after the re-evaluation interval."""
        timer = self.event("reeval")
        timer.notify_after(self.config.reevaluation_interval)
        return timer

    # ------------------------------------------------------------------
    # Idle management process
    # ------------------------------------------------------------------
    def _manage_idle(self):
        while True:
            yield self._idle_event
            record = self._idle_record
            if record is None:
                continue
            if self.policy.uses_timeout and self.policy.idle_timeout is not None:
                # Classic timeout policy: wait, then sleep if still idle.
                yield self.policy.idle_timeout
                if self._idle_sequence != record.sequence:
                    continue
                target = self.policy.timeout_state
            else:
                use_hint = record.hint is not None and getattr(self.policy, "uses_idle_hint", False)
                predicted = record.hint if use_hint else self.predictor.predict()
                target = self.policy.select_idle_state(predicted, self.breakeven)
            if target is None:
                continue
            if self._idle_sequence != record.sequence:
                continue
            if not self.config.allow_off and target.is_off:
                target = PowerState.SL4
            if self.psm.state is not target and not self.psm.is_transitioning:
                self.psm.request_state(target)
                self.sleep_decisions += 1
                tracer = self._tracer
                if tracer is not None:
                    reason = (
                        "timeout"
                        if self.policy.uses_timeout and self.policy.idle_timeout is not None
                        else "idle"
                    )
                    tracer.emit(self.kernel.now_fs, "lem.sleep", self.ip_name,
                                state=str(target), reason=reason)
