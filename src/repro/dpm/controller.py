"""DPM configuration facade.

A :class:`DpmSetup` bundles everything that defines "which power management
is running": the policy, the idle-time predictor, the LEM parameters and the
GEM parameters.  Experiments and the SoC builder take a setup object, so
comparing the paper's DPM against a baseline is a one-line change::

    paper   = DpmSetup.paper()
    baseline = DpmSetup.always_on()

Factories (rather than instances) are stored for the policy and predictor
because each LEM needs its own stateful copy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.dpm.lem import LemConfig
from repro.dpm.gem import GemConfig
from repro.dpm.policies import (
    AlwaysOnPolicy,
    DpmPolicy,
    FixedTimeoutPolicy,
    GreedySleepPolicy,
    OraclePolicy,
    RuleBasedPolicy,
)
from repro.dpm.predictor import (
    AdaptivePredictor,
    ExponentialAveragePredictor,
    FixedPredictor,
    IdlePredictor,
    LastValuePredictor,
    default_predictor,
)
from repro.dpm.rules import RuleTable
from repro.sim.simtime import SimTime

__all__ = ["DpmSetup"]


@dataclass
class DpmSetup:
    """Complete description of a power-management configuration."""

    name: str = "paper"
    policy_factory: Callable[[], DpmPolicy] = RuleBasedPolicy
    predictor_factory: Callable[[], IdlePredictor] = default_predictor
    lem_config: LemConfig = field(default_factory=LemConfig)
    gem_config: GemConfig = field(default_factory=GemConfig)
    #: whether the IP passes the true upcoming idle time to the LEM (used by
    #: the oracle policy)
    use_idle_hint: bool = False

    def make_policy(self) -> DpmPolicy:
        """Fresh policy instance for one LEM."""
        return self.policy_factory()

    def make_predictor(self) -> IdlePredictor:
        """Fresh predictor instance for one LEM."""
        return self.predictor_factory()

    # ------------------------------------------------------------------
    # Named presets
    # ------------------------------------------------------------------
    @staticmethod
    def paper(
        rules: Optional[RuleTable] = None,
        allow_off: bool = True,
        predictor_factory: Optional[Callable[[], IdlePredictor]] = None,
    ) -> "DpmSetup":
        """The paper's DPM: Table-1 rules, EWMA predictor, break-even gating."""
        return DpmSetup(
            name="paper",
            policy_factory=lambda: RuleBasedPolicy(rules=rules, allow_off=allow_off),
            predictor_factory=predictor_factory or default_predictor,
        )

    @staticmethod
    def always_on() -> "DpmSetup":
        """The paper's reference: maximum frequency, never sleep."""
        return DpmSetup(name="always-on", policy_factory=AlwaysOnPolicy)

    @staticmethod
    def greedy_sleep(allow_off: bool = True) -> "DpmSetup":
        """Full-speed execution plus break-even-gated sleeping (ablation)."""
        return DpmSetup(
            name="greedy-sleep",
            policy_factory=lambda: GreedySleepPolicy(allow_off=allow_off),
        )

    @staticmethod
    def fixed_timeout(timeout: SimTime, sleep_state=None) -> "DpmSetup":
        """Classic timeout-based shutdown (ablation)."""
        kwargs = {"timeout": timeout}
        if sleep_state is not None:
            kwargs["sleep_state"] = sleep_state
        return DpmSetup(
            name="fixed-timeout",
            policy_factory=lambda: FixedTimeoutPolicy(**kwargs),
        )

    @staticmethod
    def oracle() -> "DpmSetup":
        """Perfect idle-time knowledge (upper bound for shutdown policies)."""
        return DpmSetup(name="oracle", policy_factory=OraclePolicy, use_idle_hint=True)

    @staticmethod
    def with_predictor(kind: str) -> "DpmSetup":
        """The paper's policy with a specific predictor (ablation helper).

        ``kind`` is one of ``"fixed"``, ``"last-value"``, ``"ewma"``,
        ``"adaptive"``.
        """
        factories = {
            "fixed": FixedPredictor,
            "last-value": LastValuePredictor,
            "ewma": ExponentialAveragePredictor,
            "adaptive": AdaptivePredictor,
        }
        try:
            factory = factories[kind]
        except KeyError:
            raise ValueError(f"unknown predictor kind {kind!r}") from None
        return DpmSetup(
            name=f"paper+{kind}",
            policy_factory=RuleBasedPolicy,
            predictor_factory=factory,
        )
