"""Idle-time predictors.

When an IP becomes inactive, the LEM "makes a prediction of the idle time"
and compares it with the break-even time of each low-power state.  The paper
does not fix the predictor, so the library provides the classic choices from
the DPM literature, all sharing the :class:`IdlePredictor` interface:

* :class:`FixedPredictor` — always predicts a constant value (degenerates to
  a plain timeout policy when combined with break-even gating);
* :class:`LastValuePredictor` — predicts the previous idle period;
* :class:`ExponentialAveragePredictor` — EWMA of the observed idle periods,
  the usual "predictive shutdown" estimator;
* :class:`AdaptivePredictor` — EWMA with multiplicative correction when it
  under- or over-predicts, bounded by a floor and a ceiling.

Predictors are deliberately tiny state machines with no simulator
dependencies, which makes them easy to test (including property-based tests)
and to ablate in the benchmarks.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.sim.simtime import SimTime, ms, us

__all__ = [
    "IdlePredictor",
    "FixedPredictor",
    "LastValuePredictor",
    "ExponentialAveragePredictor",
    "AdaptivePredictor",
    "default_predictor",
]


class IdlePredictor:
    """Interface of every idle-time predictor."""

    #: short name used in reports/ablation tables
    kind = "base"

    def predict(self) -> SimTime:
        """Predicted duration of the idle period that is about to start."""
        raise NotImplementedError

    def update(self, actual_idle: SimTime) -> None:
        """Feed back the actually observed idle period."""
        raise NotImplementedError

    def reset(self) -> None:
        """Forget all history (default: no-op)."""

    # -- shared bookkeeping helpers ------------------------------------------
    def __init__(self) -> None:
        self._observations: List[SimTime] = []
        self._predictions: List[SimTime] = []

    def _record_prediction(self, value: SimTime) -> SimTime:
        self._predictions.append(value)
        return value

    def _record_observation(self, value: SimTime) -> None:
        self._observations.append(value)

    @property
    def observation_count(self) -> int:
        """Number of idle periods observed so far."""
        return len(self._observations)

    def mean_absolute_error(self) -> Optional[SimTime]:
        """Mean |prediction - observation| over the paired history."""
        pairs = min(len(self._predictions), len(self._observations))
        if pairs == 0:
            return None
        total_fs = 0
        for index in range(pairs):
            predicted = self._predictions[index].femtoseconds
            observed = self._observations[index].femtoseconds
            total_fs += abs(predicted - observed)
        return SimTime(total_fs // pairs)


class FixedPredictor(IdlePredictor):
    """Always predicts the same constant idle time."""

    kind = "fixed"

    def __init__(self, value: SimTime = ms(1)) -> None:
        super().__init__()
        self.value = value

    def predict(self) -> SimTime:
        return self._record_prediction(self.value)

    def update(self, actual_idle: SimTime) -> None:
        self._record_observation(actual_idle)


class LastValuePredictor(IdlePredictor):
    """Predicts that the next idle period equals the previous one."""

    kind = "last-value"

    def __init__(self, initial: SimTime = ms(1)) -> None:
        super().__init__()
        self.initial = initial
        self._last = initial

    def predict(self) -> SimTime:
        return self._record_prediction(self._last)

    def update(self, actual_idle: SimTime) -> None:
        self._record_observation(actual_idle)
        self._last = actual_idle

    def reset(self) -> None:
        self._last = self.initial


class ExponentialAveragePredictor(IdlePredictor):
    """Exponentially weighted moving average of the observed idle periods.

    ``prediction = alpha * last_observation + (1 - alpha) * previous_prediction``
    """

    kind = "ewma"

    def __init__(self, alpha: float = 0.5, initial: SimTime = ms(1)) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"EWMA alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.initial = initial
        self._estimate = initial

    def predict(self) -> SimTime:
        return self._record_prediction(self._estimate)

    def update(self, actual_idle: SimTime) -> None:
        self._record_observation(actual_idle)
        blended_fs = (
            self.alpha * actual_idle.femtoseconds
            + (1.0 - self.alpha) * self._estimate.femtoseconds
        )
        self._estimate = SimTime(int(round(blended_fs)))

    def reset(self) -> None:
        self._estimate = self.initial


class AdaptivePredictor(IdlePredictor):
    """EWMA with multiplicative correction and saturation bounds.

    After each observation the estimate is additionally scaled up when the
    predictor under-estimated (missed sleep opportunity) and scaled down when
    it over-estimated (risked a wrong shutdown), then clamped to
    ``[floor, ceiling]``.
    """

    kind = "adaptive"

    def __init__(
        self,
        alpha: float = 0.5,
        initial: SimTime = ms(1),
        grow_factor: float = 1.5,
        shrink_factor: float = 0.75,
        floor: SimTime = us(10),
        ceiling: SimTime = ms(100),
    ) -> None:
        super().__init__()
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
        if grow_factor < 1.0 or not 0.0 < shrink_factor <= 1.0:
            raise ConfigurationError("grow factor must be >= 1 and shrink factor in (0, 1]")
        if floor.femtoseconds > ceiling.femtoseconds:
            raise ConfigurationError("floor must not exceed ceiling")
        self.alpha = alpha
        self.initial = initial
        self.grow_factor = grow_factor
        self.shrink_factor = shrink_factor
        self.floor = floor
        self.ceiling = ceiling
        self._estimate = self._clamp(initial)

    def _clamp(self, value: SimTime) -> SimTime:
        fs = min(max(value.femtoseconds, self.floor.femtoseconds), self.ceiling.femtoseconds)
        return SimTime(fs)

    def predict(self) -> SimTime:
        return self._record_prediction(self._estimate)

    def update(self, actual_idle: SimTime) -> None:
        self._record_observation(actual_idle)
        blended_fs = (
            self.alpha * actual_idle.femtoseconds
            + (1.0 - self.alpha) * self._estimate.femtoseconds
        )
        if actual_idle.femtoseconds > self._estimate.femtoseconds:
            blended_fs *= self.grow_factor
        elif actual_idle.femtoseconds < self._estimate.femtoseconds:
            blended_fs *= self.shrink_factor
        self._estimate = self._clamp(SimTime(int(round(blended_fs))))

    def reset(self) -> None:
        self._estimate = self._clamp(self.initial)


def default_predictor() -> IdlePredictor:
    """The predictor used by the experiments (EWMA, alpha = 0.5)."""
    return ExponentialAveragePredictor(alpha=0.5)
