"""Power modelling substrate: states, DVFS, characterisation, transitions,
break-even analysis, energy accounting and the Power State Machine."""

from repro.power.breakeven import BreakEvenAnalyzer, BreakEvenEntry, break_even_time
from repro.power.characterization import (
    DEFAULT_ACTIVITY,
    InstructionClass,
    PowerCharacterization,
    default_characterization,
)
from repro.power.energy import EnergyAccount, EnergyCategory, EnergyLedger
from repro.power.operating_point import (
    OperatingPoint,
    OperatingPointTable,
    default_operating_points,
)
from repro.power.psm import PowerStateMachine
from repro.power.states import ALL_STATES, ON_STATES, SLEEP_STATES, PowerState
from repro.power.transitions import TransitionCost, TransitionTable, default_transition_table

__all__ = [
    "ALL_STATES",
    "BreakEvenAnalyzer",
    "BreakEvenEntry",
    "DEFAULT_ACTIVITY",
    "EnergyAccount",
    "EnergyCategory",
    "EnergyLedger",
    "InstructionClass",
    "ON_STATES",
    "OperatingPoint",
    "OperatingPointTable",
    "PowerCharacterization",
    "PowerState",
    "PowerStateMachine",
    "SLEEP_STATES",
    "TransitionCost",
    "TransitionTable",
    "break_even_time",
    "default_characterization",
    "default_operating_points",
    "default_transition_table",
]
