"""Power-state transition costs.

The DPM algorithm of the paper "considers the cost in terms of delay and
power dissipation of the transition between two power states".  This module
provides:

* :class:`TransitionCost` — the (energy, latency) pair of one transition;
* :class:`TransitionTable` — the complete cost matrix plus the legality of
  each transition (the PSM refuses transitions that are not listed);
* :func:`default_transition_table` — a cost matrix generated from a few
  intuitive knobs (deeper sleep states cost more to enter and leave, DVFS
  changes between ON states are comparatively cheap).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import InvalidTransitionError, PowerModelError
from repro.power.states import ON_STATES, SLEEP_STATES, PowerState
from repro.sim.simtime import SimTime, us, ZERO_TIME

__all__ = ["TransitionCost", "TransitionTable", "default_transition_table"]


@dataclass(frozen=True)
class TransitionCost:
    """Energy and latency of one power-state transition."""

    energy_j: float
    latency: SimTime

    def __post_init__(self) -> None:
        if self.energy_j < 0.0:
            raise PowerModelError("transition energy must be non-negative")

    @staticmethod
    def zero() -> "TransitionCost":
        """A free, instantaneous transition (used for self-transitions)."""
        return TransitionCost(0.0, ZERO_TIME)


class TransitionTable:
    """Cost matrix of the allowed transitions between power states.

    A transition that is not present in the table is illegal: the PSM will
    raise :class:`~repro.errors.InvalidTransitionError` if asked to perform
    it.  Self-transitions are always legal and free.
    """

    def __init__(self, costs: Mapping[Tuple[PowerState, PowerState], TransitionCost]) -> None:
        self._costs: Dict[Tuple[PowerState, PowerState], TransitionCost] = dict(costs)
        for (source, target), cost in self._costs.items():
            if not isinstance(cost, TransitionCost):
                raise PowerModelError(f"cost of {source}->{target} is not a TransitionCost")
            if source == target and (cost.energy_j != 0.0 or not cost.latency.is_zero):
                raise PowerModelError("self-transitions must be free")

    # -- queries ---------------------------------------------------------
    def is_allowed(self, source: PowerState, target: PowerState) -> bool:
        """True if the PSM may switch from ``source`` to ``target``."""
        return source == target or (source, target) in self._costs

    def cost(self, source: PowerState, target: PowerState) -> TransitionCost:
        """Cost of the ``source -> target`` transition."""
        if source == target:
            return TransitionCost.zero()
        try:
            return self._costs[(source, target)]
        except KeyError:
            raise InvalidTransitionError(
                f"transition {source} -> {target} is not allowed by the transition table"
            ) from None

    def energy_j(self, source: PowerState, target: PowerState) -> float:
        """Energy of the transition in joules."""
        return self.cost(source, target).energy_j

    def latency(self, source: PowerState, target: PowerState) -> SimTime:
        """Latency of the transition."""
        return self.cost(source, target).latency

    def round_trip_cost(self, on_state: PowerState, low_state: PowerState) -> TransitionCost:
        """Combined cost of entering ``low_state`` from ``on_state`` and returning."""
        enter = self.cost(on_state, low_state)
        leave = self.cost(low_state, on_state)
        return TransitionCost(enter.energy_j + leave.energy_j, enter.latency + leave.latency)

    @property
    def transitions(self) -> Iterable[Tuple[PowerState, PowerState]]:
        """All explicitly listed (source, target) pairs."""
        return list(self._costs)

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Serializable view keyed by ``"SRC->DST"``."""
        return {
            f"{source}->{target}": {
                "energy_j": cost.energy_j,
                "latency_us": cost.latency.seconds * 1e6,
            }
            for (source, target), cost in self._costs.items()
        }


def default_transition_table(
    reference_power_w: float = 0.15,
    dvfs_latency: Optional[SimTime] = None,
    sleep_entry_latency: Optional[Mapping[PowerState, SimTime]] = None,
    wakeup_latency: Optional[Mapping[PowerState, SimTime]] = None,
) -> TransitionTable:
    """Generate a full transition table with sensible default costs.

    Parameters
    ----------
    reference_power_w:
        Typical active power of the IP; transition energies are expressed as
        this power integrated over a state-dependent settling time, which
        keeps the table consistent when an IP is re-characterised.
    dvfs_latency:
        Latency of a voltage/frequency change between two ON states
        (default 10 µs, a typical PLL/regulator settling time).
    sleep_entry_latency / wakeup_latency:
        Optional per-state overrides of the sleep entry / exit latencies.

    The defaults encode the usual DPM trade-off: the deeper the sleep state,
    the lower its residual power (see the characterisation) but the higher
    the entry/exit latency and energy, hence the longer the break-even time.
    """
    if reference_power_w <= 0.0:
        raise PowerModelError("reference power must be positive")
    dvfs_lat = dvfs_latency or us(10)
    entry_defaults: Dict[PowerState, SimTime] = {
        PowerState.SL1: us(20),
        PowerState.SL2: us(60),
        PowerState.SL3: us(200),
        PowerState.SL4: us(600),
        PowerState.OFF: us(1500),
    }
    wake_defaults: Dict[PowerState, SimTime] = {
        PowerState.SL1: us(30),
        PowerState.SL2: us(100),
        PowerState.SL3: us(350),
        PowerState.SL4: us(1000),
        PowerState.OFF: us(3000),
    }
    if sleep_entry_latency:
        entry_defaults.update(sleep_entry_latency)
    if wakeup_latency:
        wake_defaults.update(wakeup_latency)

    costs: Dict[Tuple[PowerState, PowerState], TransitionCost] = {}

    def add(source: PowerState, target: PowerState, latency: SimTime, energy_scale: float) -> None:
        energy = reference_power_w * latency.seconds * energy_scale
        costs[(source, target)] = TransitionCost(energy, latency)

    # DVFS moves between any two ON states.
    for source in ON_STATES:
        for target in ON_STATES:
            if source is target:
                continue
            add(source, target, dvfs_lat, energy_scale=0.5)

    low_states = list(SLEEP_STATES) + [PowerState.OFF]
    for low in low_states:
        for on_state in ON_STATES:
            # Entering a low-power state from any ON state.
            add(on_state, low, entry_defaults[low], energy_scale=0.6)
            # Waking up back into any ON state.
            add(low, on_state, wake_defaults[low], energy_scale=1.0)

    # Moving between low-power states goes through a partial wake-up: allow
    # it, with a cost equal to the larger of the two wake-up costs.
    for source in low_states:
        for target in low_states:
            if source is target:
                continue
            latency = max(wake_defaults[source], entry_defaults[target])
            add(source, target, latency, energy_scale=0.8)

    return TransitionTable(costs)
