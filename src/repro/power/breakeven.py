"""Break-even time analysis for sleep-state decisions.

The LEM compares its *prediction of the idle time* with the minimum idle time
for which switching to a low-power state actually saves energy — the
*break-even time* of that state.  For an idle period of length ``T`` the two
alternatives cost:

* staying put:           ``E_stay  = P_idle · T``
* entering a low state:  ``E_sleep = E_tr + P_sleep · (T - T_tr)``

where ``E_tr`` / ``T_tr`` are the round-trip transition energy and latency
and ``P_sleep`` the residual power of the low state.  The break-even time is
the smallest ``T`` for which ``E_sleep <= E_stay`` *and* the transition fits
inside the idle period (``T >= T_tr``)::

    T_be = max(T_tr, (E_tr - P_sleep · T_tr) / (P_idle - P_sleep))

:class:`BreakEvenAnalyzer` evaluates this for every sleep/off state of an IP
and answers the question the LEM actually asks: *given a predicted idle time,
which reachable state saves the most energy?*
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import PowerModelError
from repro.power.characterization import PowerCharacterization
from repro.power.states import SLEEP_STATES, PowerState
from repro.power.transitions import TransitionTable
from repro.sim.simtime import SimTime, sec

__all__ = ["break_even_time", "BreakEvenEntry", "BreakEvenAnalyzer"]


def break_even_time(
    idle_power_w: float,
    sleep_power_w: float,
    transition_energy_j: float,
    transition_latency: SimTime,
) -> Optional[SimTime]:
    """Break-even time of one low-power state.

    Returns ``None`` when the state can never break even (its residual power
    is not lower than the idle power it would replace).
    """
    if idle_power_w < 0.0 or sleep_power_w < 0.0 or transition_energy_j < 0.0:
        raise PowerModelError("powers and energies must be non-negative")
    if sleep_power_w >= idle_power_w:
        return None
    numerator = transition_energy_j - sleep_power_w * transition_latency.seconds
    threshold_s = numerator / (idle_power_w - sleep_power_w)
    threshold = sec(max(threshold_s, 0.0))
    return max(threshold, transition_latency)


@dataclass(frozen=True)
class BreakEvenEntry:
    """Break-even figures of one candidate low-power state."""

    state: PowerState
    break_even: Optional[SimTime]
    round_trip_energy_j: float
    round_trip_latency: SimTime
    sleep_power_w: float

    @property
    def reachable(self) -> bool:
        """True when the state can pay back its transition cost at all."""
        return self.break_even is not None

    def saving_j(self, idle_power_w: float, idle_time: SimTime) -> float:
        """Energy saved (possibly negative) by using this state for ``idle_time``."""
        return self._saving_given_stay(idle_power_w * idle_time.seconds, idle_time)

    def _saving_given_stay(self, stay: float, idle_time: SimTime) -> float:
        """Saving with the stay-put cost precomputed (hoisted by callers that
        evaluate several entries for the same idle period)."""
        if idle_time.femtoseconds < self.round_trip_latency.femtoseconds:
            # The transition does not even fit in the idle window.
            return stay - (self.round_trip_energy_j + stay)
        residual_time = idle_time - self.round_trip_latency
        go = self.round_trip_energy_j + self.sleep_power_w * residual_time.seconds
        return stay - go


class BreakEvenAnalyzer:
    """Pre-computes break-even times for every low-power state of an IP."""

    def __init__(
        self,
        characterization: PowerCharacterization,
        transitions: TransitionTable,
        reference_on_state: PowerState = PowerState.ON1,
        candidate_states: Optional[Sequence[PowerState]] = None,
        include_off: bool = True,
    ) -> None:
        if not reference_on_state.is_on:
            raise PowerModelError("the reference state for break-even analysis must be an ON state")
        self.characterization = characterization
        self.transitions = transitions
        self.reference_on_state = reference_on_state
        if candidate_states is None:
            candidate_states = list(SLEEP_STATES) + ([PowerState.OFF] if include_off else [])
        self.candidate_states = list(candidate_states)
        self._entries: Dict[PowerState, BreakEvenEntry] = {}
        self._compute()
        # Iteration order for the hot selection loop, avoiding per-call
        # enum-keyed dict lookups.
        self._candidate_entries = [self._entries[state] for state in self.candidate_states]
        # The stay-put idle power is a constant of the analyzer.
        self._reference_idle_power_w = self.characterization.idle_power_w(self.reference_on_state)

    def _compute(self) -> None:
        idle_power = self.characterization.idle_power_w(self.reference_on_state)
        for state in self.candidate_states:
            if state.is_on:
                raise PowerModelError(f"{state} is not a low-power state")
            round_trip = self.transitions.round_trip_cost(self.reference_on_state, state)
            sleep_power = self.characterization.residual_power_w(state)
            threshold = break_even_time(
                idle_power_w=idle_power,
                sleep_power_w=sleep_power,
                transition_energy_j=round_trip.energy_j,
                transition_latency=round_trip.latency,
            )
            self._entries[state] = BreakEvenEntry(
                state=state,
                break_even=threshold,
                round_trip_energy_j=round_trip.energy_j,
                round_trip_latency=round_trip.latency,
                sleep_power_w=sleep_power,
            )

    # -- queries -----------------------------------------------------------
    def entry(self, state: PowerState) -> BreakEvenEntry:
        """Break-even entry of one candidate state."""
        try:
            return self._entries[state]
        except KeyError:
            raise PowerModelError(f"{state} is not a candidate low-power state") from None

    @property
    def entries(self) -> List[BreakEvenEntry]:
        """All candidate entries, shallowest first."""
        return [self._entries[state] for state in self.candidate_states]

    def break_even(self, state: PowerState) -> Optional[SimTime]:
        """Break-even time of ``state`` (``None`` if unreachable)."""
        return self.entry(state).break_even

    def best_state_for(self, predicted_idle: SimTime, allow_off: bool = True) -> Optional[PowerState]:
        """Deepest worthwhile state for an idle period of ``predicted_idle``.

        Returns ``None`` when no low-power state breaks even, in which case
        the LEM keeps the IP in its current ON state.
        """
        best_state: Optional[PowerState] = None
        best_saving = 0.0
        # The stay-put cost is the same for every entry, so hoist it and let
        # the entries evaluate the shared saving formula from it.
        predicted_fs = int(predicted_idle)
        stay = self._reference_idle_power_w * predicted_idle.seconds
        for entry in self._candidate_entries:
            if entry.state.is_off and not allow_off:
                continue
            break_even = entry.break_even
            if break_even is None:
                continue
            if predicted_fs < break_even:
                continue
            saving = entry._saving_given_stay(stay, predicted_idle)
            if saving > best_saving:
                best_saving = saving
                best_state = entry.state
        return best_state

    def summary(self) -> Dict[str, Optional[float]]:
        """Break-even times in microseconds, keyed by state name."""
        return {
            str(entry.state): (None if entry.break_even is None else entry.break_even.seconds * 1e6)
            for entry in self.entries
        }
