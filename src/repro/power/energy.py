"""Energy accounting.

Two small classes keep the books:

* :class:`EnergyAccount` — the per-IP ledger.  Energy is added in joules,
  tagged with a category (``active``, ``idle``, ``sleep``, ``transition``,
  ...), and the account can integrate a constant power over a time span.
* :class:`EnergyLedger` — the SoC-wide aggregation of accounts.  The GEM
  reads it to tell each LEM how much energy "the other IP blocks" have
  requested/dissipated, and the battery and thermal models read it to close
  their feedback loops.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List

from repro.errors import PowerModelError
from repro.sim.simtime import SimTime

__all__ = ["EnergyAccount", "EnergyLedger", "EnergyCategory"]


class EnergyCategory:
    """Standard category names used across the library."""

    ACTIVE = "active"
    IDLE = "idle"
    SLEEP = "sleep"
    TRANSITION = "transition"
    OVERHEAD = "overhead"

    ALL = (ACTIVE, IDLE, SLEEP, TRANSITION, OVERHEAD)


class EnergyAccount:
    """Per-consumer energy ledger with category breakdown.

    In the fast accuracy mode a *deposit recorder* (the SoC's
    :class:`~repro.soc.sampling.FastSampleEngine`) is attached to every
    account: each deposit is mirrored into the SoC power timeline, together
    with the interval it was integrated over, so the lazily replayed
    battery/thermal samplers can reconstruct the per-window energy flux.
    In exact mode the recorder is ``None`` and the deposit path is unchanged.
    """

    def __init__(self, owner: str) -> None:
        self.owner = owner
        self._by_category: Dict[str, float] = defaultdict(float)
        self._deposits = 0
        self._total_cache = 0.0
        self._total_dirty = False
        self._recorder = None

    # -- recording -------------------------------------------------------
    def add_energy(
        self,
        energy_j: float,
        category: str = EnergyCategory.ACTIVE,
        _span_fs: int = 0,
        _end_fs: int = 0,
    ) -> None:
        """Record ``energy_j`` joules under ``category``.

        ``_span_fs``/``_end_fs`` are internal: the femtosecond interval the
        energy was integrated over (0 for a point deposit) and its end time
        (0 meaning "now"), forwarded to the fast-mode deposit recorder.
        """
        if energy_j < 0.0:
            raise PowerModelError(f"cannot add negative energy ({energy_j} J) to {self.owner!r}")
        self._by_category[category] += energy_j
        self._deposits += 1
        self._total_dirty = True
        recorder = self._recorder
        if recorder is not None:
            recorder.record(energy_j, _span_fs, _end_fs)

    def add_power(self, power_w: float, duration: SimTime, category: str = EnergyCategory.IDLE) -> None:
        """Record ``power_w`` watts drawn for ``duration``."""
        if power_w < 0.0:
            raise PowerModelError(f"cannot integrate negative power ({power_w} W) for {self.owner!r}")
        self.add_energy(power_w * duration.seconds, category, _span_fs=int(duration))

    # -- queries -------------------------------------------------------------
    @property
    def total_j(self) -> float:
        """Total recorded energy in joules.

        The per-category sum is cached between deposits; recomputing it runs
        exactly the same ``sum`` over the same values, so the cached figure
        is bit-identical to an eager recomputation.
        """
        if self._total_dirty:
            self._total_cache = sum(self._by_category.values())
            self._total_dirty = False
        return self._total_cache

    def category_j(self, category: str) -> float:
        """Energy recorded under ``category``."""
        return self._by_category.get(category, 0.0)

    @property
    def breakdown(self) -> Dict[str, float]:
        """Copy of the per-category totals."""
        return dict(self._by_category)

    @property
    def deposit_count(self) -> int:
        """Number of recorded deposits (useful in tests)."""
        return self._deposits

    def average_power_w(self, duration: SimTime) -> float:
        """Average power over ``duration`` implied by the recorded energy."""
        if duration.is_zero:
            return 0.0
        return self.total_j / duration.seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EnergyAccount({self.owner!r}, total={self.total_j:.3e} J)"


class EnergyLedger:
    """Aggregates the accounts of every consumer in the SoC."""

    def __init__(self) -> None:
        self._accounts: Dict[str, EnergyAccount] = {}
        self._deposit_snapshot = -1
        self._total_cache = 0.0
        self._recorder = None

    def attach_recorder(self, recorder) -> None:
        """Mirror every deposit of every (current and future) account.

        Used by the fast accuracy mode; ``recorder`` must expose
        ``record(energy_j, span_fs, end_fs)`` where ``span_fs`` is the
        femtosecond interval the energy was integrated over (0 for a point
        deposit) and ``end_fs`` its end time (0 meaning "now").
        """
        self._recorder = recorder
        for account in self._accounts.values():
            account._recorder = recorder

    def account(self, owner: str) -> EnergyAccount:
        """Return (creating if needed) the account of ``owner``."""
        if owner not in self._accounts:
            created = EnergyAccount(owner)
            created._recorder = self._recorder
            self._accounts[owner] = created
            self._deposit_snapshot = -1
        return self._accounts[owner]

    def register(self, account: EnergyAccount) -> EnergyAccount:
        """Register an externally created account."""
        if account.owner in self._accounts and self._accounts[account.owner] is not account:
            raise PowerModelError(f"an account named {account.owner!r} already exists")
        account._recorder = self._recorder
        self._accounts[account.owner] = account
        self._deposit_snapshot = -1
        return account

    @property
    def owners(self) -> List[str]:
        """Names of all registered accounts."""
        return list(self._accounts)

    @property
    def total_j(self) -> float:
        """SoC-wide total energy in joules.

        Cached against the combined deposit count of the accounts; the
        recomputation runs the identical ``sum`` in the identical account
        order, so the cached figure is bit-identical to an eager one.
        """
        deposits = sum(account._deposits for account in self._accounts.values())
        if deposits != self._deposit_snapshot:
            self._total_cache = sum(account.total_j for account in self._accounts.values())
            self._deposit_snapshot = deposits
        return self._total_cache

    def total_excluding(self, owner: str) -> float:
        """Energy dissipated by every consumer except ``owner``.

        This is the quantity the GEM returns to each LEM so it "can correctly
        estimate the value of the battery status and chip temperature at the
        end of the task" (paper, section 1.4).
        """
        return sum(
            account.total_j for name, account in self._accounts.items() if name != owner
        )

    def breakdown(self) -> Dict[str, Dict[str, float]]:
        """Per-owner, per-category energy map."""
        return {name: account.breakdown for name, account in self._accounts.items()}

    def totals_by_owner(self) -> Dict[str, float]:
        """Per-owner totals."""
        return {name: account.total_j for name, account in self._accounts.items()}

    def average_power_w(self, duration: SimTime) -> float:
        """SoC-wide average power over ``duration``."""
        if duration.is_zero:
            return 0.0
        return self.total_j / duration.seconds
