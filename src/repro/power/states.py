"""ACPI-style power states of an IP block.

The paper's Power State Machine follows the ACPI recommendation: one
*soft-off* state, four *sleep* states ``SL1..SL4`` of increasing depth
(lower residual power, higher wake-up cost) and four *execution* states
``ON1..ON4`` of decreasing speed and power obtained with the
variable-voltage (DVFS) technique — ``ON1`` is the fastest and most
power-hungry operating point, ``ON4`` the slowest and most frugal.
"""

from __future__ import annotations

from enum import Enum
from typing import List, Sequence

from repro.errors import PowerModelError

__all__ = ["PowerState", "ON_STATES", "SLEEP_STATES", "ALL_STATES"]


class PowerState(Enum):
    """Power state of an IP block (ACPI-inspired)."""

    OFF = "OFF"
    SL4 = "SL4"
    SL3 = "SL3"
    SL2 = "SL2"
    SL1 = "SL1"
    ON4 = "ON4"
    ON3 = "ON3"
    ON2 = "ON2"
    ON1 = "ON1"

    # -- classification ---------------------------------------------------
    # The classification flags are precomputed per member (see the loop after
    # the class body): these properties sit on the simulation hot path and
    # re-deriving them from the member name on every call was measurable.
    @property
    def is_on(self) -> bool:
        """True for the execution states ``ON1..ON4``."""
        return self._is_on

    @property
    def is_sleep(self) -> bool:
        """True for the sleep states ``SL1..SL4``."""
        return self._is_sleep

    @property
    def is_off(self) -> bool:
        """True only for the soft-off state."""
        return self._is_off

    @property
    def can_execute(self) -> bool:
        """True when the IP can execute instructions in this state."""
        return self._is_on

    # -- ordering helpers ---------------------------------------------------
    @property
    def performance_rank(self) -> int:
        """Higher means faster execution.  ON1 = 4 ... ON4 = 1, others = 0."""
        return self._performance_rank

    @property
    def depth(self) -> int:
        """Sleep depth: 0 for ON states, 1..4 for SL1..SL4, 5 for OFF."""
        return self._depth

    @property
    def index(self) -> int:
        """Numeric suffix of ON/SL states (1-4); raises for OFF."""
        if self.is_off:
            raise PowerModelError("the OFF state has no numeric index")
        return int(self.name[2])

    # -- constructors ---------------------------------------------------------
    @staticmethod
    def on_state(index: int) -> "PowerState":
        """Return ``ONn`` for ``index`` in 1..4."""
        if index not in (1, 2, 3, 4):
            raise PowerModelError(f"ON state index must be 1..4, got {index}")
        return PowerState[f"ON{index}"]

    @staticmethod
    def sleep_state(index: int) -> "PowerState":
        """Return ``SLn`` for ``index`` in 1..4."""
        if index not in (1, 2, 3, 4):
            raise PowerModelError(f"sleep state index must be 1..4, got {index}")
        return PowerState[f"SL{index}"]

    @staticmethod
    def from_string(text: str) -> "PowerState":
        """Parse a state name (case-insensitive)."""
        try:
            return PowerState[text.strip().upper()]
        except KeyError:
            raise PowerModelError(f"unknown power state {text!r}") from None

    def __str__(self) -> str:
        return self.value


for _index, _member in enumerate(PowerState):
    _member._is_on = _member.name.startswith("ON")
    _member._is_sleep = _member.name.startswith("SL")
    _member._is_off = _member is PowerState.OFF
    _member._performance_rank = 5 - int(_member.name[2]) if _member._is_on else 0
    _member._depth = 0 if _member._is_on else (5 if _member._is_off else int(_member.name[2]))
    # Small dense index used by hot-path caches (list indexing and integer
    # dict keys are much cheaper than hashing enum members).
    _member._idx = _index
del _index, _member

# Hot-path caches pack (source, target) state pairs as idx*16 + idx; growing
# the enum past 16 members would silently alias cache slots.
assert len(PowerState) <= 16, "packed cache keys assume <= 16 power states"


ON_STATES: Sequence[PowerState] = (
    PowerState.ON1,
    PowerState.ON2,
    PowerState.ON3,
    PowerState.ON4,
)
"""Execution states ordered from fastest (ON1) to slowest (ON4)."""

SLEEP_STATES: Sequence[PowerState] = (
    PowerState.SL1,
    PowerState.SL2,
    PowerState.SL3,
    PowerState.SL4,
)
"""Sleep states ordered from shallowest (SL1) to deepest (SL4)."""

ALL_STATES: List[PowerState] = list(ON_STATES) + list(SLEEP_STATES) + [PowerState.OFF]
"""All nine states of the paper's PSM."""
