"""IP power characterisation.

The paper associates, during the power characterisation of an IP, an average
energy dissipation with *each power state* and *each type of instruction* the
IP executes.  This module provides that characterisation table:

* execution energy per cycle for every ``(ON state, instruction class)``
  pair, derived from the DVFS operating points and a per-class effective
  capacitance,
* idle power for every ON state (clock running, no instructions retired),
* residual power for every sleep state and for soft-off.

A characterisation is a plain value object; the :class:`~repro.power.psm.PowerStateMachine`
and the Local Energy Manager query it but never modify it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Mapping, Optional

from repro.errors import PowerModelError
from repro.power.operating_point import OperatingPointTable, default_operating_points
from repro.power.states import ON_STATES, SLEEP_STATES, PowerState
from repro.sim.simtime import SimTime

__all__ = ["InstructionClass", "PowerCharacterization", "default_characterization"]


class InstructionClass(Enum):
    """Coarse instruction categories with distinct switching activity."""

    ALU = "alu"
    MEMORY = "memory"
    CONTROL = "control"
    DSP = "dsp"
    IO = "io"

    def __str__(self) -> str:
        return self.value


for _index, _member in enumerate(InstructionClass):
    _member._idx = _index  # dense index for hot-path cache keys
del _index, _member

# The packed cache key below strides instruction classes by 8; growing the
# enum past that would silently alias cache slots.
assert len(InstructionClass) <= 8, "packed cache keys assume <= 8 instruction classes"


#: Default relative switching activity of each instruction class (ALU = 1.0).
DEFAULT_ACTIVITY: Dict[InstructionClass, float] = {
    InstructionClass.ALU: 1.00,
    InstructionClass.MEMORY: 1.35,
    InstructionClass.CONTROL: 0.80,
    InstructionClass.DSP: 1.60,
    InstructionClass.IO: 0.60,
}

#: Default residual power of the non-executing states, as a fraction of the
#: ON1 *idle* power.  SL1 keeps most of the chip powered (fast wake-up),
#: deeper states progressively gate more of it; OFF only retains a tiny
#: always-on domain.
DEFAULT_RESIDUAL_FRACTION: Dict[PowerState, float] = {
    PowerState.SL1: 0.40,
    PowerState.SL2: 0.20,
    PowerState.SL3: 0.08,
    PowerState.SL4: 0.03,
    PowerState.OFF: 0.005,
}


@dataclass
class PowerCharacterization:
    """Average power/energy figures of one IP across all power states.

    Parameters
    ----------
    operating_points:
        The DVFS table of the IP's ON states.
    effective_capacitance_f:
        Switched capacitance of the IP at activity 1.0, in farads.
    activity_by_class:
        Relative switching activity per instruction class.
    idle_activity:
        Activity factor when the IP sits in an ON state without executing,
        as a fraction of full activity.  The default (0.5) models the
        paper-era assumption of an IP without aggressive clock gating: the
        clock tree and control logic keep switching while the datapath idles,
        which is precisely why shutting idle blocks down pays off.
    residual_fraction:
        Power of sleep/off states as a fraction of the ON1 idle power.
    leakage_coefficient:
        ``k_leak`` of the leakage model ``P_leak = k_leak · V``.
    """

    operating_points: OperatingPointTable
    effective_capacitance_f: float = 0.8e-9
    activity_by_class: Mapping[InstructionClass, float] = field(
        default_factory=lambda: dict(DEFAULT_ACTIVITY)
    )
    idle_activity: float = 0.50
    residual_fraction: Mapping[PowerState, float] = field(
        default_factory=lambda: dict(DEFAULT_RESIDUAL_FRACTION)
    )
    leakage_coefficient: float = 0.004

    def __post_init__(self) -> None:
        if self.effective_capacitance_f <= 0.0:
            raise PowerModelError("effective capacitance must be positive")
        if not 0.0 < self.idle_activity < 1.0:
            raise PowerModelError("idle activity must be a fraction in (0, 1)")
        if self.leakage_coefficient < 0.0:
            raise PowerModelError("leakage coefficient must be non-negative")
        for iclass in InstructionClass:
            if iclass not in self.activity_by_class:
                raise PowerModelError(f"missing activity for instruction class {iclass}")
            if self.activity_by_class[iclass] <= 0.0:
                raise PowerModelError(f"activity for {iclass} must be positive")
        for state in list(SLEEP_STATES) + [PowerState.OFF]:
            if state not in self.residual_fraction:
                raise PowerModelError(f"missing residual power fraction for {state}")
            if not 0.0 <= self.residual_fraction[state] <= 1.0:
                raise PowerModelError(f"residual fraction of {state} must be in [0, 1]")
        self._validate_sleep_ordering()
        # Memoisation of the pure per-state figures.  A characterisation is a
        # value object (never mutated after construction), so caching the
        # computed floats returns bit-identical values while keeping the
        # simulation hot path free of repeated table lookups.  Keys are the
        # dense per-member ``_idx`` indices (integer hashing is C-speed,
        # enum hashing is not).
        self._idle_power_cache: list = [None] * len(PowerState)
        self._energy_per_cycle_cache: Dict[int, float] = {}
        self._execution_time_cache: Dict[tuple, SimTime] = {}

    def _validate_sleep_ordering(self) -> None:
        ordered = [self.residual_fraction[state] for state in SLEEP_STATES]
        for shallow, deep in zip(ordered, ordered[1:]):
            if deep > shallow:
                raise PowerModelError(
                    "residual power must not increase with sleep depth (SL1 >= SL2 >= SL3 >= SL4)"
                )
        if self.residual_fraction[PowerState.OFF] > self.residual_fraction[PowerState.SL4]:
            raise PowerModelError("soft-off power must not exceed SL4 power")

    # -- execution figures ---------------------------------------------------
    def active_power_w(
        self, state: PowerState, instruction_class: InstructionClass = InstructionClass.ALU
    ) -> float:
        """Average power while executing ``instruction_class`` in ``state``."""
        point = self.operating_points.point(state)
        activity = self.activity_by_class[instruction_class]
        dynamic = point.dynamic_power_w(self.effective_capacitance_f, activity)
        return dynamic + point.leakage_power_w(self.leakage_coefficient)

    def energy_per_cycle_j(
        self, state: PowerState, instruction_class: InstructionClass = InstructionClass.ALU
    ) -> float:
        """Average energy of one clock cycle of ``instruction_class`` in ``state``."""
        key = state._idx * 8 + instruction_class._idx
        cached = self._energy_per_cycle_cache.get(key)
        if cached is not None:
            return cached
        point = self.operating_points.point(state)
        activity = self.activity_by_class[instruction_class]
        dynamic = point.energy_per_cycle_j(self.effective_capacitance_f, activity)
        leakage = point.leakage_power_w(self.leakage_coefficient) / point.frequency_hz
        value = dynamic + leakage
        self._energy_per_cycle_cache[key] = value
        return value

    def task_energy_j(
        self,
        state: PowerState,
        cycles: float,
        instruction_class: InstructionClass = InstructionClass.ALU,
    ) -> float:
        """Energy to execute ``cycles`` cycles of ``instruction_class`` in ``state``."""
        if cycles < 0:
            raise PowerModelError("cycle count must be non-negative")
        return cycles * self.energy_per_cycle_j(state, instruction_class)

    def execution_time(self, state: PowerState, cycles: float) -> SimTime:
        """Time to execute ``cycles`` cycles in ``state``.

        Cycle counts are often random per task, so the cache only serves
        the repeated lookups *within* a task's lifecycle (reference
        duration, estimation, execution); it is emptied once it grows past
        a bound to keep long campaign runs from accumulating stale keys.
        """
        key = (state._idx, cycles)
        cache = self._execution_time_cache
        cached = cache.get(key)
        if cached is None:
            if len(cache) >= 4096:
                cache.clear()
            cached = self.operating_points.point(state).execution_time(cycles)
            cache[key] = cached
        return cached

    # -- background figures ----------------------------------------------------
    def idle_power_w(self, state: PowerState) -> float:
        """Power of ``state`` while no instructions execute."""
        idx = state._idx
        cached = self._idle_power_cache[idx]
        if cached is not None:
            return cached
        if state.is_on:
            point = self.operating_points.point(state)
            dynamic = point.dynamic_power_w(self.effective_capacitance_f, self.idle_activity)
            value = dynamic + point.leakage_power_w(self.leakage_coefficient)
        else:
            value = self.residual_power_w(state)
        self._idle_power_cache[idx] = value
        return value

    def residual_power_w(self, state: PowerState) -> float:
        """Power of a sleep/off state."""
        if state.is_on:
            raise PowerModelError(f"{state} is an execution state; use idle_power_w")
        reference = self.idle_power_w(PowerState.ON1)
        return self.residual_fraction[state] * reference

    def background_power_w(self, state: PowerState, busy: bool) -> float:
        """Power drawn by the IP outside explicit task-energy accounting.

        While ``busy`` the task energy is charged separately by the IP, so
        the background contribution is zero; otherwise it is the idle or
        residual power of the current state.
        """
        if busy:
            return 0.0
        return self.idle_power_w(state)

    # -- summaries --------------------------------------------------------------
    def summary(self) -> Dict[str, float]:
        """Key figures, useful in reports and examples."""
        data: Dict[str, float] = {}
        for state in ON_STATES:
            data[f"power_active_{state}"] = self.active_power_w(state)
            data[f"power_idle_{state}"] = self.idle_power_w(state)
        for state in list(SLEEP_STATES) + [PowerState.OFF]:
            data[f"power_{state}"] = self.residual_power_w(state)
        return data


def default_characterization(
    max_frequency_hz: float = 200e6,
    max_voltage_v: float = 1.2,
    effective_capacitance_f: float = 0.8e-9,
    operating_points: Optional[OperatingPointTable] = None,
) -> PowerCharacterization:
    """Characterisation with the library defaults (200 MHz / 1.2 V class IP)."""
    table = operating_points or default_operating_points(max_frequency_hz, max_voltage_v)
    return PowerCharacterization(
        operating_points=table,
        effective_capacitance_f=effective_capacitance_f,
    )
