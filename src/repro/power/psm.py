"""The Power State Machine (PSM) simulation module.

The PSM is the hardware component that sits next to each IP and physically
switches it between the ACPI-style power states.  It is deliberately dumb:
*which* state to use is the Local Energy Manager's decision; the PSM only

* validates and executes the requested transitions, paying their energy and
  latency cost (taken from the :class:`~repro.power.transitions.TransitionTable`),
* publishes the current state on a signal so the functional IP knows at
  which speed it may execute,
* integrates the *background* power of the IP (idle power in ON states,
  residual power in sleep/off states) into the IP's energy account, and
* keeps residency statistics per state, which the analysis layer turns into
  temperature and energy figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.errors import InvalidTransitionError, PowerModelError
from repro.power.characterization import PowerCharacterization
from repro.power.energy import EnergyAccount, EnergyCategory
from repro.power.states import PowerState
from repro.power.transitions import TransitionTable
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime

__all__ = ["PowerStateMachine"]


class PowerStateMachine(Module):
    """Per-IP power state machine with transition costs and energy accounting.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Instance name (typically ``"<ip>.psm"`` via the parent argument).
    characterization:
        Power characterisation of the attached IP.
    transitions:
        Allowed transitions and their costs.
    energy_account:
        Ledger that receives background and transition energy.  The
        functional IP charges its *active* (task) energy to the same account.
    initial_state:
        State at time zero (default ``ON1``).
    parent:
        Optional parent module.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        characterization: PowerCharacterization,
        transitions: TransitionTable,
        energy_account: EnergyAccount,
        initial_state: PowerState = PowerState.ON1,
        parent: Optional[Module] = None,
        fast: bool = False,
        sample_interval: Optional[SimTime] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        self.characterization = characterization
        self.transitions = transitions
        self.energy_account = energy_account
        # Authoritative state lives in plain attributes (updated immediately);
        # the signals mirror them one delta later for traces and observers.
        self._state = initial_state
        self._in_transition = False
        self.state_signal = self.signal("state", initial_state)
        self.in_transition = self.signal("in_transition", False)
        self.transition_complete = self.event("transition_complete")
        self._request_event = self.event("request")
        self._requested_state: Optional[PowerState] = None
        self._busy = False
        self._last_account_fs: int = kernel.now_fs
        # Hot-path state keyed by the dense PowerState._idx: residency in raw
        # femtoseconds, memoised background power, and transition costs.
        self._residency_fs: list = [0] * len(PowerState)
        # States that appeared in the books even with zero accumulated time
        # (a zero-latency transition): residency() must still list them.
        self._residency_touched: set = set()
        self._background_power: list = [None] * len(PowerState)
        self._cost_cache: Dict[int, object] = {}
        self._label_cache: Dict[int, str] = {}
        self._transition_count = 0
        self._transition_counts: Dict[str, int] = defaultdict(int)
        # Fast accuracy mode serves transitions synchronously: the request
        # starts the transition inline and a timed event callback finishes
        # it, so no dedicated process (and none of its two activations per
        # transition) exists.  Completion times, transition_complete delta
        # notifications and all bookkeeping match the process exactly.
        self._fast = fast
        self._fast_source: Optional[PowerState] = None
        self._fast_target: Optional[PowerState] = None
        self._fast_cost = None
        # Direct completion hooks (fast mode): called synchronously when a
        # transition completes, replacing a delta-notified event for
        # callback-style consumers (the LEM's inline grant path).  Process
        # waiters still get the delta notification.
        self._completion_hooks: list = []
        # In exact mode the per-sample flush integrates background power (and
        # residency) for the *elapsed part of an in-flight transition* at
        # every sample boundary — behaviour pinned by the golden metrics.
        # Fast mode has no per-sample flush, so mid-transition integration is
        # quantised to the same boundaries instead (see
        # _integrate_background); a full (unquantised) integration is used
        # by the end-of-run flush, as in exact mode.
        self._sample_interval_fs: int = int(sample_interval) if sample_interval else 0
        if fast:
            self._fast_complete = self.event("fast_complete")
            self._fast_complete.add_callback(self._finish_fast_transition)
        else:
            self.add_thread(self._transition_process, name="transitions")

    #: structured-tracing hook (repro.obs); None keeps the hook site to a
    #: single attribute test, so untraced runs stay bit-identical
    _tracer = None
    #: source label for emitted events (the IP name); falls back to the
    #: PSM's own module name when instrumentation did not set one
    _trace_name = None

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def state(self) -> PowerState:
        """The current power state."""
        return self._state

    @property
    def is_transitioning(self) -> bool:
        """True while a transition is in flight."""
        return self._in_transition

    @property
    def transition_count(self) -> int:
        """Number of completed transitions."""
        return self._transition_count

    @property
    def transition_counts(self) -> Dict[str, int]:
        """Completed transitions keyed by ``"SRC->DST"``."""
        return dict(self._transition_counts)

    def residency(self) -> Dict[PowerState, SimTime]:
        """Time spent so far in each state (up to the last accounting point)."""
        return {
            state: SimTime(self._residency_fs[state._idx])
            for state in PowerState
            if self._residency_fs[state._idx] > 0 or state._idx in self._residency_touched
        }

    # ------------------------------------------------------------------
    # Requests (called by the LEM / GEM)
    # ------------------------------------------------------------------
    def request_state(self, target: PowerState) -> None:
        """Ask the PSM to move to ``target``.

        The request is served by the PSM's own process; callers that need to
        know when the IP is actually in the new state should wait with
        :meth:`wait_for_state`.
        """
        if not isinstance(target, PowerState):
            raise PowerModelError(f"requested state must be a PowerState, got {target!r}")
        if not self.transitions.is_allowed(self.state, target) and self._requested_state is None:
            raise InvalidTransitionError(
                f"{self.name}: transition {self.state} -> {target} is not allowed"
            )
        self._requested_state = target
        if self._fast:
            if not self._in_transition:
                self._serve_fast()
            return
        self._request_event.notify()

    def wait_for_state(self, target: PowerState):
        """Generator helper: ``yield from psm.wait_for_state(ON2)``."""
        while self.state is not target or self.is_transitioning:
            yield self.transition_complete

    def transition_latency(self, target: PowerState) -> SimTime:
        """Latency the PSM would pay to reach ``target`` from the current state."""
        return self.transitions.latency(self.state, target)

    # ------------------------------------------------------------------
    # Busy bookkeeping (called by the functional IP)
    # ------------------------------------------------------------------
    def set_busy(self, busy: bool) -> None:
        """Tell the PSM whether the IP is actively executing a task.

        While busy, the task energy is charged by the IP itself, so the PSM
        suspends background-power integration to avoid double counting.
        """
        if busy and not self.state.can_execute:
            raise PowerModelError(
                f"{self.name}: IP cannot execute in state {self.state}"
            )
        self._integrate_background()
        self._busy = busy

    # ------------------------------------------------------------------
    # Energy integration
    # ------------------------------------------------------------------
    def flush_energy(self, full: bool = False) -> None:
        """Integrate background power up to the current simulated time.

        Experiment runners call this once at the end of a simulation so that
        the last interval (between the final event and the end time) is
        charged to the account.  ``full`` forces unquantised integration of
        an in-flight transition (fast-mode end-of-run flush only).
        """
        self._integrate_background(full)

    def _integrate_background(self, full: bool = True) -> None:
        now_fs = self.kernel._now_fs
        end_fs = now_fs
        if self._in_transition and self._fast and not full:
            # Quantise mid-transition integration to the sample boundaries
            # where the exact per-sample flush would have performed it.
            interval = self._sample_interval_fs
            if interval:
                end_fs = now_fs - now_fs % interval
        elapsed_fs = end_fs - self._last_account_fs
        if elapsed_fs <= 0:
            return
        state = self._state
        idx = state._idx
        self._residency_fs[idx] += elapsed_fs
        if not self._busy:
            power = self._background_power[idx]
            if power is None:
                power = self.characterization.idle_power_w(state)
                self._background_power[idx] = power
            if power > 0.0:
                category = EnergyCategory.IDLE if state._is_on else EnergyCategory.SLEEP
                # elapsed_fs / 10^15 matches SimTime.seconds bit for bit
                # without allocating the SimTime.
                self.energy_account.add_energy(
                    power * (elapsed_fs / 1_000_000_000_000_000),
                    category,
                    _span_fs=elapsed_fs,
                    _end_fs=end_fs if end_fs != now_fs else 0,
                )
        self._last_account_fs = end_fs

    # ------------------------------------------------------------------
    # Fast-mode synchronous transitions
    # ------------------------------------------------------------------
    def _serve_fast(self) -> None:
        """Start serving the pending request inline (fast accuracy mode)."""
        while True:
            target = self._requested_state
            if target is None:
                return
            self._requested_state = None
            source = self._state
            if target is source:
                self.transition_complete.notify()
                continue
            cost_key = source._idx * 16 + target._idx
            cost = self._cost_cache.get(cost_key)
            if cost is None:
                cost = self.transitions.cost(source, target)
                self._cost_cache[cost_key] = cost
            self._integrate_background()
            self._in_transition = True
            self.in_transition.write_if_watched(True)
            if not cost.latency.is_zero:
                self._fast_source = source
                self._fast_target = target
                self._fast_cost = cost
                self._fast_complete.notify_after(cost.latency)
                return
            self._complete_transition(source, target, cost)

    def _finish_fast_transition(self) -> None:
        """Timed-event callback: the in-flight transition's latency elapsed."""
        if not self._in_transition:  # pragma: no cover - defensive
            return
        source = self._fast_source
        target = self._fast_target
        cost = self._fast_cost
        self._fast_source = None
        self._fast_target = None
        self._fast_cost = None
        self._complete_transition(source, target, cost)
        # A newer request that arrived mid-flight is served next — matching
        # the process's behaviour of completing first, then re-looping.
        if self._requested_state is not None:
            self._serve_fast()

    def _complete_transition(self, source: PowerState, target: PowerState, cost) -> None:
        """Transition-completion bookkeeping, shared by both modes.

        In fast mode the quantised integration first bills any
        sample-boundary slices of the transition interval that the exact
        per-sample flush would have billed while the transition was in
        flight; status mirrors are waiter-gated and direct completion hooks
        fire.  In exact mode the legacy unconditional writes and delta
        notification are preserved bit for bit.
        """
        fast = self._fast
        if fast:
            self._integrate_background(full=False)
        self._last_account_fs = self.kernel.now_fs
        self._residency_fs[source._idx] += cost.latency
        self._residency_touched.add(source._idx)
        self.energy_account.add_energy(cost.energy_j, EnergyCategory.TRANSITION)
        self._state = target
        self._in_transition = False
        self._transition_count += 1
        label_key = source._idx * 16 + target._idx
        label = self._label_cache.get(label_key)
        if label is None:
            label = f"{source}->{target}"
            self._label_cache[label_key] = label
        self._transition_counts[label] += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.emit(
                self.kernel.now_fs, "psm.transition",
                self._trace_name or self.name,
                from_state=str(source), to_state=str(target),
                latency_us=int(cost.latency) / 1e9,
                energy_j=cost.energy_j,
            )
        if fast:
            self.state_signal.write_if_watched(target)
            self.in_transition.write_if_watched(False)
            for hook in self._completion_hooks:
                hook()
            complete = self.transition_complete
            if complete._waiters or complete._callbacks:
                complete.notify_delta()
        else:
            self.state_signal.write(target)
            self.in_transition.write(False)
            self.transition_complete.notify_delta()

    # ------------------------------------------------------------------
    # Internal transition process
    # ------------------------------------------------------------------
    def _transition_process(self):
        while True:
            if self._requested_state is None:
                yield self._request_event
                continue
            target = self._requested_state
            self._requested_state = None
            source = self.state
            if target is source:
                self.transition_complete.notify()
                continue
            cost_key = source._idx * 16 + target._idx
            cost = self._cost_cache.get(cost_key)
            if cost is None:
                cost = self.transitions.cost(source, target)
                self._cost_cache[cost_key] = cost
            # Close the books on the time spent in the old state.
            self._integrate_background()
            self._in_transition = True
            self.in_transition.write(True)
            if not cost.latency.is_zero:
                yield cost.latency
            # The transition interval itself is charged as transition energy;
            # the completion tail moves the accounting marker past it without
            # billing idle power.
            self._complete_transition(source, target, cost)
