"""The Power State Machine (PSM) simulation module.

The PSM is the hardware component that sits next to each IP and physically
switches it between the ACPI-style power states.  It is deliberately dumb:
*which* state to use is the Local Energy Manager's decision; the PSM only

* validates and executes the requested transitions, paying their energy and
  latency cost (taken from the :class:`~repro.power.transitions.TransitionTable`),
* publishes the current state on a signal so the functional IP knows at
  which speed it may execute,
* integrates the *background* power of the IP (idle power in ON states,
  residual power in sleep/off states) into the IP's energy account, and
* keeps residency statistics per state, which the analysis layer turns into
  temperature and energy figures.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Optional

from repro.errors import InvalidTransitionError, PowerModelError
from repro.power.characterization import PowerCharacterization
from repro.power.energy import EnergyAccount, EnergyCategory
from repro.power.states import PowerState
from repro.power.transitions import TransitionTable
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime

__all__ = ["PowerStateMachine"]


class PowerStateMachine(Module):
    """Per-IP power state machine with transition costs and energy accounting.

    Parameters
    ----------
    kernel:
        Simulation kernel.
    name:
        Instance name (typically ``"<ip>.psm"`` via the parent argument).
    characterization:
        Power characterisation of the attached IP.
    transitions:
        Allowed transitions and their costs.
    energy_account:
        Ledger that receives background and transition energy.  The
        functional IP charges its *active* (task) energy to the same account.
    initial_state:
        State at time zero (default ``ON1``).
    parent:
        Optional parent module.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        characterization: PowerCharacterization,
        transitions: TransitionTable,
        energy_account: EnergyAccount,
        initial_state: PowerState = PowerState.ON1,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        self.characterization = characterization
        self.transitions = transitions
        self.energy_account = energy_account
        # Authoritative state lives in plain attributes (updated immediately);
        # the signals mirror them one delta later for traces and observers.
        self._state = initial_state
        self._in_transition = False
        self.state_signal = self.signal("state", initial_state)
        self.in_transition = self.signal("in_transition", False)
        self.transition_complete = self.event("transition_complete")
        self._request_event = self.event("request")
        self._requested_state: Optional[PowerState] = None
        self._busy = False
        self._last_account_fs: int = kernel.now_fs
        # Hot-path state keyed by the dense PowerState._idx: residency in raw
        # femtoseconds, memoised background power, and transition costs.
        self._residency_fs: list = [0] * len(PowerState)
        # States that appeared in the books even with zero accumulated time
        # (a zero-latency transition): residency() must still list them.
        self._residency_touched: set = set()
        self._background_power: list = [None] * len(PowerState)
        self._cost_cache: Dict[int, object] = {}
        self._transition_count = 0
        self._transition_counts: Dict[str, int] = defaultdict(int)
        self.add_thread(self._transition_process, name="transitions")

    # ------------------------------------------------------------------
    # State access
    # ------------------------------------------------------------------
    @property
    def state(self) -> PowerState:
        """The current power state."""
        return self._state

    @property
    def is_transitioning(self) -> bool:
        """True while a transition is in flight."""
        return self._in_transition

    @property
    def transition_count(self) -> int:
        """Number of completed transitions."""
        return self._transition_count

    @property
    def transition_counts(self) -> Dict[str, int]:
        """Completed transitions keyed by ``"SRC->DST"``."""
        return dict(self._transition_counts)

    def residency(self) -> Dict[PowerState, SimTime]:
        """Time spent so far in each state (up to the last accounting point)."""
        return {
            state: SimTime(self._residency_fs[state._idx])
            for state in PowerState
            if self._residency_fs[state._idx] > 0 or state._idx in self._residency_touched
        }

    # ------------------------------------------------------------------
    # Requests (called by the LEM / GEM)
    # ------------------------------------------------------------------
    def request_state(self, target: PowerState) -> None:
        """Ask the PSM to move to ``target``.

        The request is served by the PSM's own process; callers that need to
        know when the IP is actually in the new state should wait with
        :meth:`wait_for_state`.
        """
        if not isinstance(target, PowerState):
            raise PowerModelError(f"requested state must be a PowerState, got {target!r}")
        if not self.transitions.is_allowed(self.state, target) and self._requested_state is None:
            raise InvalidTransitionError(
                f"{self.name}: transition {self.state} -> {target} is not allowed"
            )
        self._requested_state = target
        self._request_event.notify()

    def wait_for_state(self, target: PowerState):
        """Generator helper: ``yield from psm.wait_for_state(ON2)``."""
        while self.state is not target or self.is_transitioning:
            yield self.transition_complete

    def transition_latency(self, target: PowerState) -> SimTime:
        """Latency the PSM would pay to reach ``target`` from the current state."""
        return self.transitions.latency(self.state, target)

    # ------------------------------------------------------------------
    # Busy bookkeeping (called by the functional IP)
    # ------------------------------------------------------------------
    def set_busy(self, busy: bool) -> None:
        """Tell the PSM whether the IP is actively executing a task.

        While busy, the task energy is charged by the IP itself, so the PSM
        suspends background-power integration to avoid double counting.
        """
        if busy and not self.state.can_execute:
            raise PowerModelError(
                f"{self.name}: IP cannot execute in state {self.state}"
            )
        self._integrate_background()
        self._busy = busy

    # ------------------------------------------------------------------
    # Energy integration
    # ------------------------------------------------------------------
    def flush_energy(self) -> None:
        """Integrate background power up to the current simulated time.

        Experiment runners call this once at the end of a simulation so that
        the last interval (between the final event and the end time) is
        charged to the account.
        """
        self._integrate_background()

    def _integrate_background(self) -> None:
        now_fs = self.kernel.now_fs
        elapsed_fs = now_fs - self._last_account_fs
        if elapsed_fs == 0:
            return
        state = self._state
        idx = state._idx
        self._residency_fs[idx] += elapsed_fs
        if not self._busy:
            power = self._background_power[idx]
            if power is None:
                power = self.characterization.idle_power_w(state)
                self._background_power[idx] = power
            if power > 0.0:
                category = EnergyCategory.IDLE if state._is_on else EnergyCategory.SLEEP
                self.energy_account.add_power(power, SimTime(elapsed_fs), category)
        self._last_account_fs = now_fs

    # ------------------------------------------------------------------
    # Internal transition process
    # ------------------------------------------------------------------
    def _transition_process(self):
        while True:
            if self._requested_state is None:
                yield self._request_event
                continue
            target = self._requested_state
            self._requested_state = None
            source = self.state
            if target is source:
                self.transition_complete.notify()
                continue
            cost_key = source._idx * 16 + target._idx
            cost = self._cost_cache.get(cost_key)
            if cost is None:
                cost = self.transitions.cost(source, target)
                self._cost_cache[cost_key] = cost
            # Close the books on the time spent in the old state.
            self._integrate_background()
            self._in_transition = True
            self.in_transition.write(True)
            if not cost.latency.is_zero:
                yield cost.latency
            # The transition interval itself is charged as transition energy;
            # move the accounting marker past it without billing idle power.
            self._last_account_fs = self.kernel.now_fs
            self._residency_fs[source._idx] += cost.latency
            self._residency_touched.add(source._idx)
            self.energy_account.add_energy(cost.energy_j, EnergyCategory.TRANSITION)
            self._state = target
            self.state_signal.write(target)
            self._in_transition = False
            self.in_transition.write(False)
            self._transition_count += 1
            self._transition_counts[f"{source}->{target}"] += 1
            self.transition_complete.notify_delta()
