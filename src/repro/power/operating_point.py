"""DVFS operating points: the (voltage, frequency) pair behind each ON state.

The paper's variable-voltage technique runs the IP at one of four execution
states with decreasing clock frequency and supply voltage.  This module
captures that mapping and the first-order CMOS power model used to derive
per-state power and energy figures:

* dynamic power  ``P_dyn  = C_eff · V² · f``
* leakage power  ``P_leak = I_leak(V) · V`` (modelled as ``k_leak · V``)
* energy per cycle ``E_cyc = C_eff · V²`` (dynamic part)

Only ratios between states matter for the reproduction: the baseline used by
the paper is "everything at maximum frequency", so energy savings and delay
overheads are relative quantities.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Optional

from repro.errors import PowerModelError
from repro.power.states import ON_STATES, PowerState
from repro.sim.simtime import SimTime, sec

__all__ = ["OperatingPoint", "OperatingPointTable", "default_operating_points"]


@dataclass(frozen=True)
class OperatingPoint:
    """One DVFS point: the voltage and clock frequency of an ON state."""

    state: PowerState
    voltage_v: float
    frequency_hz: float

    def __post_init__(self) -> None:
        if not self.state.is_on:
            raise PowerModelError(f"operating points only exist for ON states, got {self.state}")
        if self.voltage_v <= 0.0:
            raise PowerModelError(f"supply voltage must be positive, got {self.voltage_v}")
        if self.frequency_hz <= 0.0:
            raise PowerModelError(f"clock frequency must be positive, got {self.frequency_hz}")

    # -- derived quantities ------------------------------------------------
    @property
    def clock_period(self) -> SimTime:
        """Clock period of this operating point."""
        return sec(1.0 / self.frequency_hz)

    def dynamic_power_w(self, effective_capacitance_f: float, activity: float = 1.0) -> float:
        """Dynamic power ``activity · C_eff · V² · f`` in watts."""
        if effective_capacitance_f < 0.0 or activity < 0.0:
            raise PowerModelError("capacitance and activity must be non-negative")
        return activity * effective_capacitance_f * self.voltage_v**2 * self.frequency_hz

    def energy_per_cycle_j(self, effective_capacitance_f: float, activity: float = 1.0) -> float:
        """Dynamic energy per clock cycle ``activity · C_eff · V²`` in joules."""
        if effective_capacitance_f < 0.0 or activity < 0.0:
            raise PowerModelError("capacitance and activity must be non-negative")
        return activity * effective_capacitance_f * self.voltage_v**2

    def leakage_power_w(self, leakage_coefficient: float) -> float:
        """Leakage power modelled as ``k_leak · V`` in watts."""
        if leakage_coefficient < 0.0:
            raise PowerModelError("leakage coefficient must be non-negative")
        return leakage_coefficient * self.voltage_v

    def execution_time(self, cycles: float) -> SimTime:
        """Time to execute ``cycles`` clock cycles at this point."""
        if cycles < 0:
            raise PowerModelError("cycle count must be non-negative")
        return sec(cycles / self.frequency_hz)

    def slowdown_versus(self, reference: "OperatingPoint") -> float:
        """How many times slower this point is than ``reference``."""
        return reference.frequency_hz / self.frequency_hz


class OperatingPointTable:
    """The four DVFS points of an IP, indexed by ON state.

    The table validates the paper's monotonicity requirement: going from ON1
    to ON4 both frequency and voltage must be non-increasing (strictly
    decreasing frequency), so that deeper ON states are always slower and at
    most as power-hungry.
    """

    def __init__(self, points: Iterable[OperatingPoint]) -> None:
        self._points: Dict[PowerState, OperatingPoint] = {}
        for point in points:
            if point.state in self._points:
                raise PowerModelError(f"duplicate operating point for {point.state}")
            self._points[point.state] = point
        missing = [state for state in ON_STATES if state not in self._points]
        if missing:
            raise PowerModelError(f"missing operating points for {[str(s) for s in missing]}")
        self._validate_monotonic()
        # Dense per-state view: point() lookups sit on the task hot path and
        # PowerState._idx indexes a plain list at C speed (enum __hash__ is
        # a Python-level call).
        self._points_by_idx: list = [None] * 16
        for state, point in self._points.items():
            self._points_by_idx[state._idx] = point

    def _validate_monotonic(self) -> None:
        ordered = [self._points[state] for state in ON_STATES]
        for faster, slower in zip(ordered, ordered[1:]):
            if slower.frequency_hz >= faster.frequency_hz:
                raise PowerModelError(
                    "operating point frequencies must strictly decrease from ON1 to ON4"
                )
            if slower.voltage_v > faster.voltage_v:
                raise PowerModelError(
                    "operating point voltages must not increase from ON1 to ON4"
                )

    # -- access ---------------------------------------------------------------
    def point(self, state: PowerState) -> OperatingPoint:
        """The operating point of ``state`` (must be an ON state)."""
        found = self._points_by_idx[state._idx]
        if found is None:
            raise PowerModelError(f"no operating point for state {state}")
        return found

    def __getitem__(self, state: PowerState) -> OperatingPoint:
        return self.point(state)

    def __iter__(self):
        return (self._points[state] for state in ON_STATES)

    @property
    def fastest(self) -> OperatingPoint:
        """The ON1 point (the paper's baseline: maximum clock frequency)."""
        return self._points[PowerState.ON1]

    @property
    def slowest(self) -> OperatingPoint:
        """The ON4 point."""
        return self._points[PowerState.ON4]

    def frequency_ratio(self, state: PowerState) -> float:
        """``f(state) / f(ON1)`` — the relative speed of ``state``."""
        return self.point(state).frequency_hz / self.fastest.frequency_hz

    def energy_ratio(self, state: PowerState) -> float:
        """``E_cyc(state) / E_cyc(ON1)`` — the relative energy per cycle."""
        return (self.point(state).voltage_v / self.fastest.voltage_v) ** 2

    def as_dict(self) -> Dict[str, Dict[str, float]]:
        """Serializable view ``{state: {voltage_v, frequency_hz}}``."""
        return {
            str(state): {
                "voltage_v": self._points[state].voltage_v,
                "frequency_hz": self._points[state].frequency_hz,
            }
            for state in ON_STATES
        }


def default_operating_points(
    max_frequency_hz: float = 200e6,
    max_voltage_v: float = 1.2,
    frequency_scales: Optional[Mapping[PowerState, float]] = None,
    voltage_scales: Optional[Mapping[PowerState, float]] = None,
) -> OperatingPointTable:
    """Build the default four-point DVFS table used throughout the repo.

    The default scales follow the usual DVFS practice of shaving voltage
    roughly linearly with frequency while keeping a margin:

    ========  =========  =======
    state     f / f_max  V / V_max
    ========  =========  =======
    ``ON1``   1.00       1.000
    ``ON2``   0.75       0.875
    ``ON3``   0.50       0.750
    ``ON4``   0.25       0.625
    ========  =========  =======

    which yields per-cycle energy ratios of 1.00 / 0.77 / 0.56 / 0.39 and
    slowdowns of 1 / 1.33 / 2 / 4 — the same qualitative trade-off the paper
    exploits (large savings available at a large delay cost).
    """
    if max_frequency_hz <= 0 or max_voltage_v <= 0:
        raise PowerModelError("maximum frequency and voltage must be positive")
    f_scales = {
        PowerState.ON1: 1.00,
        PowerState.ON2: 0.75,
        PowerState.ON3: 0.50,
        PowerState.ON4: 0.25,
    }
    v_scales = {
        PowerState.ON1: 1.000,
        PowerState.ON2: 0.875,
        PowerState.ON3: 0.750,
        PowerState.ON4: 0.625,
    }
    if frequency_scales:
        f_scales.update(frequency_scales)
    if voltage_scales:
        v_scales.update(voltage_scales)
    points = [
        OperatingPoint(
            state=state,
            voltage_v=max_voltage_v * v_scales[state],
            frequency_hz=max_frequency_hz * f_scales[state],
        )
        for state in ON_STATES
    ]
    return OperatingPointTable(points)
