"""Battery monitor simulation module.

The monitor closes the loop between the energy ledger and the battery model:
every ``sample_interval`` it drains the battery by the energy the SoC
consumed since the previous sample and publishes the quantised
:class:`~repro.battery.status.BatteryLevel` on a signal that the LEMs and the
GEM read.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.battery.model import Battery
from repro.battery.status import BatteryLevel
from repro.errors import BatteryError
from repro.power.energy import EnergyLedger
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ms

__all__ = ["BatteryMonitor"]


class BatteryMonitor(Module):
    """Samples SoC energy consumption and publishes the battery level."""

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        battery: Battery,
        ledger: EnergyLedger,
        sample_interval: Optional[SimTime] = None,
        pre_sample=None,
        autonomous: bool = True,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if sample_interval is not None and sample_interval.is_zero:
            raise BatteryError("battery sample interval must be positive")
        self.battery = battery
        self.ledger = ledger
        self.pre_sample = pre_sample
        self.sample_interval = sample_interval or ms(1)
        self.level_signal = self.signal("level", battery.level)
        self.soc_signal = self.signal("state_of_charge", battery.state_of_charge)
        self._last_total_j = ledger.total_j
        self._last_sample_time = kernel.now
        self._history: List[Tuple[SimTime, float]] = []
        # ``autonomous=False`` suppresses the sampling thread: an external
        # orchestrator (e.g. the SoC's shared sampler) calls sample_now()
        # on the same schedule, halving the per-sample process activations.
        if autonomous:
            self.add_thread(self._sample_loop, name="sampler")

    @property
    def level(self) -> BatteryLevel:
        """Most recently published battery level."""
        return self.level_signal.read()

    @property
    def history(self) -> List[Tuple[SimTime, float]]:
        """Sampled ``(time, state_of_charge)`` pairs."""
        return list(self._history)

    def sample_now(self) -> BatteryLevel:
        """Force an immediate sample (used by experiment runners at the end)."""
        self._take_sample()
        return self.battery.level

    def _take_sample(self) -> None:
        if self.pre_sample is not None:
            # Let lazily-integrated consumers (PSM background power, fan) post
            # their energy up to now, so the drain is smooth rather than lumpy.
            self.pre_sample()
        total = self.ledger.total_j
        delta = total - self._last_total_j
        self._last_total_j = total
        elapsed = self.kernel.now - self._last_sample_time
        self._last_sample_time = self.kernel.now
        if delta > 0.0:
            # Use the actual elapsed time to derive the discharge rate; when the
            # sample is forced with no time elapsed, fall back to nominal rate.
            self.battery.draw_energy(delta, over=elapsed if not elapsed.is_zero else None)
        self._history.append((self.kernel.now, self.battery.state_of_charge))
        self.level_signal.write(self.battery.level)
        self.soc_signal.write(self.battery.state_of_charge)

    def _sample_loop(self):
        while True:
            yield self.sample_interval
            self._take_sample()
