"""Battery status coding.

The LEM receives the battery status "coded in 5 classes: Empty, Low, Medium,
High and Full" (paper, section 1.3).  Table 1 additionally distinguishes the
case in which the system runs from an external *power supply* (mains), where
battery preservation is irrelevant; that case is represented here by
:attr:`BatteryLevel.AC_POWER`.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

from repro._enumtools import dense_index
from repro.errors import BatteryError

__all__ = ["BatteryLevel", "BatteryThresholds"]


class BatteryLevel(Enum):
    """Quantised battery status as seen by the energy managers."""

    EMPTY = "empty"
    LOW = "low"
    MEDIUM = "medium"
    HIGH = "high"
    FULL = "full"
    AC_POWER = "ac_power"

    @property
    def is_battery(self) -> bool:
        """True for the five genuine battery classes (not mains power)."""
        return self is not BatteryLevel.AC_POWER

    @property
    def rank(self) -> int:
        """Ordering helper: EMPTY=0 ... FULL=4, AC_POWER=5."""
        return self._idx

    def at_least(self, other: "BatteryLevel") -> bool:
        """True when this level is at least as charged as ``other``."""
        return self._idx >= other._idx

    def __str__(self) -> str:
        return self._str


dense_index(BatteryLevel)  # _idx doubles as rank; _str for hot-path __str__


@dataclass(frozen=True)
class BatteryThresholds:
    """State-of-charge thresholds (fractions of capacity) for each class.

    A state of charge ``soc`` maps to:

    * ``EMPTY``  when ``soc < empty``
    * ``LOW``    when ``empty <= soc < low``
    * ``MEDIUM`` when ``low <= soc < medium``
    * ``HIGH``   when ``medium <= soc < high``
    * ``FULL``   when ``soc >= high``
    """

    empty: float = 0.05
    low: float = 0.30
    medium: float = 0.60
    high: float = 0.85

    def __post_init__(self) -> None:
        levels = (self.empty, self.low, self.medium, self.high)
        if any(not 0.0 < value < 1.0 for value in levels):
            raise BatteryError("battery thresholds must be fractions in (0, 1)")
        if not self.empty < self.low < self.medium < self.high:
            raise BatteryError("battery thresholds must be strictly increasing")

    def classify(self, state_of_charge: float) -> BatteryLevel:
        """Map a state of charge in [0, 1] to a :class:`BatteryLevel`."""
        if not 0.0 <= state_of_charge <= 1.0 + 1e-9:
            raise BatteryError(f"state of charge must be in [0, 1], got {state_of_charge}")
        if state_of_charge < self.empty:
            return BatteryLevel.EMPTY
        if state_of_charge < self.low:
            return BatteryLevel.LOW
        if state_of_charge < self.medium:
            return BatteryLevel.MEDIUM
        if state_of_charge < self.high:
            return BatteryLevel.HIGH
        return BatteryLevel.FULL

    def representative_soc(self, level: BatteryLevel) -> float:
        """A state of charge that maps back to ``level`` (mid-band value)."""
        bands = {
            BatteryLevel.EMPTY: self.empty / 2.0,
            BatteryLevel.LOW: (self.empty + self.low) / 2.0,
            BatteryLevel.MEDIUM: (self.low + self.medium) / 2.0,
            BatteryLevel.HIGH: (self.medium + self.high) / 2.0,
            BatteryLevel.FULL: (self.high + 1.0) / 2.0,
        }
        try:
            return bands[level]
        except KeyError:
            raise BatteryError(f"{level} has no representative state of charge") from None
