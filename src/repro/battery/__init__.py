"""Battery substrate: coulomb-counting model, status coding and monitor."""

from repro.battery.model import Battery, BatteryConfig
from repro.battery.monitor import BatteryMonitor
from repro.battery.status import BatteryLevel, BatteryThresholds

__all__ = [
    "Battery",
    "BatteryConfig",
    "BatteryLevel",
    "BatteryMonitor",
    "BatteryThresholds",
]
