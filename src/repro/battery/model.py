"""Analytic battery model.

The paper develops a SystemC battery model "to verify the performances of the
power management in different conditions".  Here the battery is a
coulomb-counting energy reservoir with two refinements that matter for DPM
studies:

* a *rate-dependent efficiency* (Peukert-like): draining at high power wastes
  part of the charge, so policies that spread the same energy over a longer
  time (e.g. running at ON4) recover slightly more usable capacity;
* an optional *self-discharge* leak.

The model is deliberately analytic (no electro-chemistry): the DPM loop only
consumes the quantised :class:`~repro.battery.status.BatteryLevel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.battery.status import BatteryLevel, BatteryThresholds
from repro.errors import BatteryError
from repro.sim.simtime import SimTime

__all__ = ["Battery", "BatteryConfig"]


@dataclass
class BatteryConfig:
    """Static parameters of a :class:`Battery`."""

    capacity_j: float = 250.0
    initial_state_of_charge: float = 1.0
    nominal_power_w: float = 0.2
    peukert_exponent: float = 1.10
    self_discharge_w: float = 0.0
    on_ac_power: bool = False
    thresholds: BatteryThresholds = field(default_factory=BatteryThresholds)

    def __post_init__(self) -> None:
        if self.capacity_j <= 0.0:
            raise BatteryError("battery capacity must be positive")
        if not 0.0 <= self.initial_state_of_charge <= 1.0:
            raise BatteryError("initial state of charge must be in [0, 1]")
        if self.nominal_power_w <= 0.0:
            raise BatteryError("nominal discharge power must be positive")
        if self.peukert_exponent < 1.0:
            raise BatteryError("Peukert exponent must be >= 1")
        if self.self_discharge_w < 0.0:
            raise BatteryError("self-discharge power must be non-negative")


class Battery:
    """Coulomb-counting battery with rate-dependent efficiency."""

    def __init__(self, config: Optional[BatteryConfig] = None) -> None:
        self.config = config or BatteryConfig()
        self._remaining_j = self.config.capacity_j * self.config.initial_state_of_charge
        self._drawn_j = 0.0
        self._wasted_j = 0.0
        # state_of_charge is a pure function of _remaining_j; the monitors
        # read it several times per sample, so cache it per remaining value.
        self._soc_cache_remaining_j: float = self._remaining_j
        self._soc_cache: float = max(0.0, min(1.0, self._remaining_j / self.config.capacity_j))
        # The quantised level is likewise a pure function of _remaining_j and
        # is read far more often than the charge moves (every GEM evaluation
        # and LEM estimate), so cache the classification per remaining value.
        self._level_cache_remaining_j: float = float("nan")
        self._level_cache: Optional[BatteryLevel] = None
        # Fast accuracy mode installs a callback that lazily replays the
        # pending sampler windows before the state is observed; exact mode
        # leaves it None and pays one attribute check per read.
        self._sync_hook = None

    # -- state ------------------------------------------------------------
    @property
    def capacity_j(self) -> float:
        """Nominal capacity in joules."""
        return self.config.capacity_j

    @property
    def remaining_j(self) -> float:
        """Remaining usable energy in joules."""
        return self._remaining_j

    @property
    def state_of_charge(self) -> float:
        """Remaining fraction of the nominal capacity, in [0, 1]."""
        if self._sync_hook is not None:
            self._sync_hook()
        if self._remaining_j != self._soc_cache_remaining_j:
            self._soc_cache_remaining_j = self._remaining_j
            self._soc_cache = max(0.0, min(1.0, self._remaining_j / self.config.capacity_j))
        return self._soc_cache

    @property
    def drawn_j(self) -> float:
        """Total energy delivered to the load so far."""
        return self._drawn_j

    @property
    def wasted_j(self) -> float:
        """Energy lost to rate-dependent inefficiency and self-discharge."""
        return self._wasted_j

    @property
    def is_exhausted(self) -> bool:
        """True when no usable energy remains."""
        return self._remaining_j <= 0.0

    @property
    def level(self) -> BatteryLevel:
        """Quantised battery level (or ``AC_POWER`` when on mains)."""
        if self.config.on_ac_power:
            return BatteryLevel.AC_POWER
        if self._sync_hook is not None:
            self._sync_hook()
        remaining = self._remaining_j
        if remaining != self._level_cache_remaining_j:
            self._level_cache_remaining_j = remaining
            # Inline state_of_charge (the property would re-run the sync
            # hook this method just ran).
            if remaining != self._soc_cache_remaining_j:
                self._soc_cache_remaining_j = remaining
                self._soc_cache = max(0.0, min(1.0, remaining / self.config.capacity_j))
            self._level_cache = self.config.thresholds.classify(self._soc_cache)
        return self._level_cache

    def level_if_drawn(self, energy_j: float) -> BatteryLevel:
        """Level the battery would have after drawing ``energy_j`` more joules.

        This is the estimate the LEM performs before each task: "it estimates
        the battery status ... at the end of the task execution".
        """
        if self.config.on_ac_power:
            return BatteryLevel.AC_POWER
        if energy_j < 0.0:
            raise BatteryError("estimated energy must be non-negative")
        if self._sync_hook is not None:
            self._sync_hook()
        projected = max(0.0, self._remaining_j - energy_j) / self.config.capacity_j
        return self.config.thresholds.classify(min(1.0, projected))

    # -- dynamics --------------------------------------------------------------
    def _rate_factor(self, power_w: float) -> float:
        """Peukert-like efficiency factor: > 1 when drawing above nominal power."""
        if power_w <= self.config.nominal_power_w:
            return 1.0
        ratio = power_w / self.config.nominal_power_w
        return ratio ** (self.config.peukert_exponent - 1.0)

    def draw_energy(self, energy_j: float, over: Optional[SimTime] = None) -> float:
        """Remove ``energy_j`` joules delivered to the load.

        Parameters
        ----------
        energy_j:
            Energy delivered to the load.
        over:
            Interval over which the energy was drawn; used to derive the
            average power for the rate-dependent efficiency.  When omitted,
            nominal-rate efficiency (factor 1.0) is assumed.

        Returns
        -------
        float
            The energy actually removed from the battery (delivered plus
            losses), in joules.
        """
        if energy_j < 0.0:
            raise BatteryError("cannot draw negative energy")
        if self.config.on_ac_power:
            # On mains power the battery is bypassed entirely.
            self._drawn_j += energy_j
            return energy_j
        power = 0.0
        if over is not None and not over.is_zero:
            power = energy_j / over.seconds
        factor = self._rate_factor(power) if power > 0.0 else 1.0
        removed = energy_j * factor
        if over is not None and self.config.self_discharge_w > 0.0:
            leak = self.config.self_discharge_w * over.seconds
            removed += leak
        self._remaining_j = max(0.0, self._remaining_j - removed)
        self._drawn_j += energy_j
        self._wasted_j += removed - energy_j
        return removed

    def drain_windows(self, energy_per_window_j: float, window: SimTime, count: int) -> None:
        """Drain ``count`` equal sampling windows in one closed-form step.

        Fast accuracy mode only.  When the per-window average power stays at
        or below the nominal discharge power (rate factor 1.0) and there is
        neither self-discharge nor a clamp at empty, ``count`` successive
        :meth:`draw_energy` calls reduce the charge by exactly
        ``count * energy_per_window_j`` — the batched update reassociates
        that sum (documented tolerance: 1e-6 relative on the state of
        charge).  Any condition that would make the per-window steps
        non-linear falls back to the exact per-window loop.
        """
        if count <= 0:
            return
        if self.config.on_ac_power:
            self._drawn_j += energy_per_window_j * count
            return
        window_s = window.seconds
        power = energy_per_window_j / window_s if window_s > 0.0 else 0.0
        total = energy_per_window_j * count
        if (
            power <= self.config.nominal_power_w
            and self.config.self_discharge_w == 0.0
            and self._remaining_j > total
        ):
            self._remaining_j -= total
            self._drawn_j += total
            return
        for _ in range(count):
            self.draw_energy(energy_per_window_j, over=window)

    def recharge(self, energy_j: float) -> None:
        """Add charge (clamped to the nominal capacity)."""
        if energy_j < 0.0:
            raise BatteryError("cannot recharge with negative energy")
        self._remaining_j = min(self.config.capacity_j, self._remaining_j + energy_j)

    def snapshot(self) -> dict:
        """Plain-dict state summary (used by reports and tests)."""
        return {
            "remaining_j": self._remaining_j,
            "state_of_charge": self.state_of_charge,
            "level": str(self.level),
            "drawn_j": self._drawn_j,
            "wasted_j": self._wasted_j,
            "on_ac_power": self.config.on_ac_power,
        }
