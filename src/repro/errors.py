"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  More specific subclasses exist per
subsystem (simulation kernel, power modelling, configuration, ...), which
keeps error handling explicit without forcing users to import from deep
submodules.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the :mod:`repro` library."""


class ConfigurationError(ReproError):
    """A configuration object is inconsistent or out of range."""


class SimulationError(ReproError):
    """Base class for errors raised by the discrete-event kernel."""


class ElaborationError(SimulationError):
    """The module hierarchy could not be elaborated (bad bindings, names...)."""


class SchedulingError(SimulationError):
    """A process performed an illegal scheduling operation."""


class SimulationFinished(SimulationError):
    """Raised internally when the simulation has no more work to do.

    Users normally never see this exception: :meth:`repro.sim.kernel.Kernel.run`
    catches it and returns normally.  It is public so custom schedulers can
    reuse the same control flow.
    """


class PowerModelError(ReproError):
    """A power characterisation, state machine or transition table is invalid."""


class InvalidTransitionError(PowerModelError):
    """A power state transition was requested that the PSM does not allow."""


class BatteryError(ReproError):
    """The battery model was used inconsistently (e.g. negative capacity)."""


class ThermalError(ReproError):
    """The thermal model was configured or driven inconsistently."""


class WorkloadError(ReproError):
    """A workload/task description is invalid."""


class RuleError(ReproError):
    """A DPM rule table is malformed, ambiguous or incomplete."""


class ExperimentError(ReproError):
    """An experiment/scenario definition cannot be run."""


class PlatformError(ReproError):
    """A declarative platform specification is malformed or inconsistent.

    The message always carries the dotted path of the offending field
    (``ips[2].workload.kind: ...``) so spec authors can fix their file
    without reading the library source.
    """


class CampaignError(ReproError):
    """A campaign specification, store or execution request is invalid."""
