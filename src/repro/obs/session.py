"""Trace requests, SoC instrumentation and the per-run trace session.

This is the glue between the tracing primitives (:mod:`repro.obs.tracer`,
:mod:`repro.obs.sinks`) and the rest of the library:

* :class:`TraceRequest` — a validated "trace this run" descriptor built
  from CLI flags, a spec's ``TraceDef`` section, or Python code;
* :func:`instrument` — attaches a :class:`~repro.obs.tracer.Tracer` to a
  built :class:`~repro.soc.soc.SoC` by setting the ``_tracer`` hook
  attribute on every instrumented component (never by observing
  signals, which would perturb the waiter-gated fast paths);
* :class:`TraceSession` — the run-scoped lifecycle: attach before the
  simulation starts, ``finish`` afterwards to write the sink file.

The ``vcd`` format is signal-level rather than event-level: it watches
the PSM state signals (plus the bus busy signal) with the simulator's
:class:`~repro.sim.trace.TraceRecorder` and dumps a VCD at the end.
Watching attaches real signal observers, so unlike ``jsonl``/``perfetto``
a VCD-traced run is *not* guaranteed bit-identical to an untraced one in
fast accuracy mode (exact mode is unaffected).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Optional, Tuple

from repro.obs.events import ObsError, expand_event_filter
from repro.obs.sinks import TRACE_EXTENSIONS, write_jsonl, write_perfetto
from repro.obs.tracer import Tracer

if TYPE_CHECKING:
    from repro.platform.spec import TraceDef
    from repro.sim.simtime import SimTime
    from repro.soc.soc import SoC

__all__ = ["TRACE_FORMATS", "TraceRequest", "TraceSession", "instrument"]

#: Accepted trace formats, in CLI/choice order.
TRACE_FORMATS = ("jsonl", "perfetto", "vcd")


@dataclass(frozen=True)
class TraceRequest:
    """A validated request to trace one simulation run."""

    format: str = "jsonl"
    path: Optional[str] = None
    events: Optional[Tuple[str, ...]] = None

    def __post_init__(self) -> None:
        if self.format not in TRACE_FORMATS:
            raise ObsError(
                f"unknown trace format {self.format!r}; expected one of "
                f"{', '.join(TRACE_FORMATS)}"
            )
        # Fail fast on unknown kinds/categories instead of at attach time.
        expand_event_filter(self.events)
        if self.events and self.format == "vcd":
            raise ObsError("event filters only apply to jsonl/perfetto traces")

    @classmethod
    def from_trace_def(cls, trace_def: Optional["TraceDef"]) -> Optional["TraceRequest"]:
        """Build a request from a spec's ``TraceDef`` (None when disabled)."""
        if trace_def is None or not trace_def.enabled:
            return None
        return cls(
            format=trace_def.format,
            path=trace_def.path or None,
            events=tuple(trace_def.events) or None,
        )

    def resolve_path(self, stem: str) -> Path:
        """The output file: the explicit path, or ``<stem>_trace.<ext>``."""
        if self.path:
            return Path(self.path)
        return Path(f"{stem}_trace.{TRACE_EXTENSIONS[self.format]}")


def instrument(soc: "SoC", tracer: Tracer) -> None:
    """Point every instrumented component of a built SoC at ``tracer``.

    Emits one ``sim.backend`` event recording the kernel backend that runs
    the trace (plus interpreter/core versions, and the fallback reason when
    a native request could not be honoured), one ``psm.state`` event per IP
    so sinks know the initial state, and seeds the SoC's level-change
    trackers with the current battery and thermal levels.
    """
    now_fs = soc.kernel.now_fs
    soc._tracer = tracer
    soc._traced_battery_level = soc.battery.level
    soc._traced_thermal_level = soc.thermal.level
    resolution = getattr(soc.kernel, "backend_resolution", None)
    if resolution is not None:
        import platform

        from repro.sim.native import load as load_native_core

        fields = {"backend": resolution.backend,
                  "python": platform.python_version()}
        if resolution.reason:
            fields["reason"] = resolution.reason
        if resolution.backend == "native":
            fields["core_version"] = load_native_core().CORE_VERSION
        tracer.emit(now_fs, "sim.backend", soc.name, **fields)
    for instance in soc.instances:
        ip_name = instance.spec.name
        instance.ip._tracer = tracer
        instance.psm._tracer = tracer
        instance.psm._trace_name = ip_name
        instance.lem._tracer = tracer
        tracer.emit(now_fs, "psm.state", ip_name, state=str(instance.psm.state))
    if soc.gem is not None:
        soc.gem._tracer = tracer
    if soc.bus is not None:
        soc.bus._tracer = tracer
    if soc.fast_engine is not None:
        engine = soc.fast_engine
        engine._tracer = tracer
        engine._trace_source = soc.name
        engine._traced_battery_level = soc.battery.level
        engine._traced_thermal_level = soc.thermal.level


class TraceSession:
    """One run's tracing lifecycle: attach, simulate, finish.

    ``stem`` names the default output file (usually the scenario name);
    an explicit ``request.path`` wins.
    """

    def __init__(self, request: TraceRequest, stem: str) -> None:
        self.request = request
        self.path = request.resolve_path(stem)
        self.tracer: Optional[Tracer] = (
            Tracer(request.events) if request.format != "vcd" else None
        )
        self._soc: Optional["SoC"] = None

    def attach(self, soc: "SoC") -> None:
        """Hook the (already built, not yet run) SoC up for tracing."""
        self._soc = soc
        if self.tracer is not None:
            instrument(soc, self.tracer)
            return
        # VCD: record the waveforms observability cares about — every PSM
        # state signal plus the bus busy line when a bus exists.
        for instance in soc.instances:
            soc.simulator.watch(instance.psm.state_signal)
        if soc.bus is not None:
            soc.simulator.watch(soc.bus.busy_signal)

    def finish(self, end_time: Optional["SimTime"] = None) -> Path:
        """Write the trace file and detach; returns the output path."""
        if self._soc is None:
            raise ObsError("TraceSession.finish called before attach")
        fmt = self.request.format
        if fmt == "jsonl":
            write_jsonl(self.tracer.events, self.path)
        elif fmt == "perfetto":
            write_perfetto(self.tracer.events, self.path,
                           process_name=self._soc.name)
        else:
            recorder = self._soc.simulator.trace
            recorder.write_vcd(self.path, end_time=end_time)
            recorder.close()
        return self.path
