"""The near-zero-overhead tracing facade.

Instrumented classes all carry a ``_tracer = None`` **class attribute**;
hook sites read it into a local and emit only when it is not ``None``::

    tracer = self._tracer
    if tracer is not None:
        tracer.emit(self.kernel.now_fs, "psm.transition", self.name, ...)

With tracing disabled that is a single attribute load and an identity
test — cheap enough that the pinned goldens stay bit-identical and the
simulation-speed benchmarks move by well under the 2% budget.  Crucially
the hooks never attach signal observers: ``Signal.write_if_watched``,
``Bus._update_level`` and the fast sampling engine all change behaviour
when a signal grows observers, so observer-based tracing could never be
a no-op.

Events are buffered in memory as lightweight :class:`TraceEvent` records
and serialized by a sink (:mod:`repro.obs.sinks`) after the run ends.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from repro.obs.events import expand_event_filter

__all__ = ["TraceEvent", "Tracer"]


class TraceEvent:
    """One recorded event: envelope (time, kind, source) plus payload."""

    __slots__ = ("t_fs", "kind", "source", "fields")

    def __init__(
        self, t_fs: int, kind: str, source: str, fields: Dict[str, Any]
    ) -> None:
        self.t_fs = t_fs
        self.kind = kind
        self.source = source
        self.fields = fields

    def to_dict(self) -> Dict[str, Any]:
        """Flat mapping a sink writes (envelope merged with payload)."""
        data: Dict[str, Any] = {
            "t_fs": int(self.t_fs), "kind": self.kind, "source": self.source,
        }
        data.update(self.fields)
        return data

    def __repr__(self) -> str:
        return (
            f"TraceEvent(t_fs={int(self.t_fs)}, kind={self.kind!r}, "
            f"source={self.source!r}, fields={self.fields!r})"
        )


class Tracer:
    """Collects structured events emitted by instrumentation hooks.

    ``events`` optionally restricts recording to a set of event kinds
    and/or categories (see :mod:`repro.obs.events`); the filter is
    expanded to a frozenset of full kinds at construction so ``emit``
    pays one set-membership test at most.
    """

    __slots__ = ("events", "_filter")

    def __init__(self, events: Optional[Iterable[str]] = None) -> None:
        self.events: List[TraceEvent] = []
        self._filter = expand_event_filter(events)

    def emit(self, t_fs: int, kind: str, source: str, /, **fields: Any) -> None:
        # Envelope params are positional-only: payload fields may legally be
        # called "source" (psm.transition) without colliding.
        if self._filter is not None and kind not in self._filter:
            return
        self.events.append(TraceEvent(t_fs, kind, source, fields))

    def __len__(self) -> int:
        return len(self.events)

    def to_dicts(self) -> List[Dict[str, Any]]:
        return [event.to_dict() for event in self.events]
