"""repro.obs — structured event tracing with JSONL/Perfetto/VCD sinks.

The observability layer of the library.  A :class:`Tracer` collects
typed events (task lifecycle, PSM transitions, LEM/GEM rule decisions,
bus arbitration, sampler windows, battery/thermal level crossings) from
guarded hooks threaded through ``repro.sim``/``repro.soc``/``repro.dpm``;
pluggable sinks serialize them after the run.  A disabled tracer is a
single attribute test per hook site, so untraced runs stay bit-identical
to the pinned goldens.

Select a sink declaratively through the ``trace`` section of a
:class:`~repro.platform.PlatformSpec`, imperatively via the
``--trace``/``--trace-format`` CLI flags, or programmatically::

    from repro.obs import TraceRequest, TraceSession
    session = TraceSession(TraceRequest(format="perfetto"), stem="A1")
    soc = build_soc(...)
    session.attach(soc)
    end = soc.run_until_done(...)
    path = session.finish(end_time=end)
"""

from repro.obs.events import (
    EVENT_CATEGORIES,
    EVENT_TYPES,
    EventType,
    ObsError,
    expand_event_filter,
    validate_event,
)
from repro.obs.session import TRACE_FORMATS, TraceRequest, TraceSession, instrument
from repro.obs.sinks import (
    TRACE_EXTENSIONS,
    build_perfetto,
    write_jsonl,
    write_perfetto,
)
from repro.obs.tracer import TraceEvent, Tracer

__all__ = [
    "EVENT_CATEGORIES",
    "EVENT_TYPES",
    "EventType",
    "ObsError",
    "TRACE_EXTENSIONS",
    "TRACE_FORMATS",
    "TraceEvent",
    "TraceRequest",
    "TraceSession",
    "Tracer",
    "build_perfetto",
    "expand_event_filter",
    "instrument",
    "validate_event",
    "write_jsonl",
    "write_perfetto",
]
