"""Trace sinks: JSON-lines and Chrome-trace/Perfetto JSON.

Both sinks consume the in-memory event list a :class:`~repro.obs.tracer.Tracer`
accumulated during a run; nothing is written while the simulation is hot.
The VCD sink is different in kind — it records raw signal waveforms via
the existing :class:`repro.sim.trace.TraceRecorder` rather than
structured events — and lives in :mod:`repro.obs.session`.

The Perfetto sink emits the Chrome trace-event JSON format (an object
with a ``traceEvents`` array), which both ``chrome://tracing`` and
https://ui.perfetto.dev load directly:

* one track (``tid``) per event source — each IP, the bus, the GEM and
  the SoC sampler — named via ``thread_name`` metadata events;
* PSM residency and bus ownership as **async slices** (``ph: b``/``e``)
  reconstructed from ``psm.state``/``psm.transition`` and
  ``bus.grant``/``release``/``cancel`` events;
* LEM/GEM decisions, deferrals and sleep pushes as **instant** events
  (``ph: i``) carrying their full rule context in ``args``;
* tasks as **complete slices** (``ph: X``) from ``task.start`` pairs
  with ``task.complete``;
* sampler windows as **counter** events (``ph: C``) so battery SoC and
  temperature plot as graphs.

Timestamps: the simulator keeps integer femtoseconds; Chrome traces use
microseconds, so ``ts = t_fs / 1e9`` (float µs keeps sub-µs event order).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Union

from repro.obs.tracer import TraceEvent

__all__ = [
    "TRACE_EXTENSIONS",
    "build_perfetto",
    "write_jsonl",
    "write_perfetto",
]

#: File extension per trace format (used for default output paths).
TRACE_EXTENSIONS = {"jsonl": "jsonl", "perfetto": "json", "vcd": "vcd"}


def write_jsonl(events: Sequence[TraceEvent], path: Union[str, Path]) -> int:
    """Write one JSON object per line; returns the event count."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in events:
            handle.write(json.dumps(event.to_dict(), sort_keys=False))
            handle.write("\n")
    return len(events)


def _us(t_fs: int) -> float:
    return t_fs / 1e9


class _PerfettoBuilder:
    """Accumulates Chrome trace events with stable per-source tracks."""

    def __init__(self, process_name: str) -> None:
        self.out: List[dict] = []
        self._tids: Dict[str, int] = {}
        self._async_id = 0
        self.out.append({
            "ph": "M", "pid": 1, "name": "process_name",
            "args": {"name": process_name},
        })

    def tid(self, source: str) -> int:
        tid = self._tids.get(source)
        if tid is None:
            tid = len(self._tids) + 1
            self._tids[source] = tid
            self.out.append({
                "ph": "M", "pid": 1, "tid": tid, "name": "thread_name",
                "args": {"name": source},
            })
        return tid

    def async_slice(
        self,
        cat: str,
        name: str,
        source: str,
        start_fs: int,
        end_fs: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._async_id += 1
        ident = self._async_id
        tid = self.tid(source)
        begin = {
            "ph": "b", "cat": cat, "id": ident, "name": name,
            "pid": 1, "tid": tid, "ts": _us(start_fs),
        }
        if args:
            begin["args"] = args
        self.out.append(begin)
        self.out.append({
            "ph": "e", "cat": cat, "id": ident, "name": name,
            "pid": 1, "tid": tid, "ts": _us(end_fs),
        })

    def instant(
        self,
        cat: str,
        name: str,
        source: str,
        t_fs: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        event = {
            "ph": "i", "s": "t", "cat": cat, "name": name,
            "pid": 1, "tid": self.tid(source), "ts": _us(t_fs),
        }
        if args:
            event["args"] = args
        self.out.append(event)

    def complete(
        self,
        cat: str,
        name: str,
        source: str,
        start_fs: int,
        dur_fs: int,
        args: Optional[Dict[str, Any]] = None,
    ) -> None:
        event = {
            "ph": "X", "cat": cat, "name": name,
            "pid": 1, "tid": self.tid(source),
            "ts": _us(start_fs), "dur": _us(dur_fs),
        }
        if args:
            event["args"] = args
        self.out.append(event)

    def counter(
        self, name: str, source: str, t_fs: int, values: Dict[str, Any]
    ) -> None:
        self.out.append({
            "ph": "C", "cat": "sample", "name": name,
            "pid": 1, "tid": self.tid(source), "ts": _us(t_fs),
            "args": values,
        })


def build_perfetto(
    events: Sequence[TraceEvent], process_name: str = "repro-dpm"
) -> Dict[str, Any]:
    """Convert tracer events into a Chrome-trace JSON document (dict)."""
    builder = _PerfettoBuilder(process_name)
    # Open slices keyed by source: PSM residency per IP, bus ownership
    # per master, in-flight task per IP.
    psm_open: Dict[str, tuple] = {}       # source -> (state, start_fs)
    bus_open: Dict[str, tuple] = {}       # master -> (words, start_fs)
    task_open: Dict[str, tuple] = {}      # source -> (task, start_fs, fields)
    end_fs = events[-1].t_fs if events else 0

    for event in events:
        kind = event.kind
        t_fs = int(event.t_fs)
        source = event.source
        fields = event.fields
        if kind == "psm.state":
            psm_open[source] = (fields["state"], t_fs)
        elif kind == "psm.transition":
            latency_fs = int(round(fields["latency_us"] * 1e9))
            start_of_transition = max(t_fs - latency_fs, 0)
            open_slice = psm_open.get(source)
            if open_slice is not None:
                builder.async_slice(
                    "psm", open_slice[0], source, open_slice[1],
                    start_of_transition,
                )
            if latency_fs:
                builder.async_slice(
                    "psm", f"{fields['from_state']}→{fields['to_state']}",
                    source, start_of_transition, t_fs,
                    args={"energy_j": fields["energy_j"]},
                )
            psm_open[source] = (fields["to_state"], t_fs)
        elif kind == "bus.grant":
            bus_open[fields["master"]] = (fields["words"], t_fs)
            builder.instant("bus", f"grant:{fields['master']}", source, t_fs,
                            args=dict(fields))
        elif kind in ("bus.release", "bus.cancel"):
            open_slice = bus_open.pop(fields["master"], None)
            if open_slice is not None:
                builder.async_slice(
                    "bus", fields["master"], source, open_slice[1], t_fs,
                    args={"words": open_slice[0]},
                )
        elif kind == "bus.request":
            builder.instant("bus", f"request:{fields['master']}", source,
                            t_fs, args=dict(fields))
        elif kind == "task.start":
            task_open[source] = (fields["task"], t_fs, dict(fields))
        elif kind == "task.complete":
            open_task = task_open.pop(source, None)
            if open_task is not None:
                args = open_task[2]
                args.update(fields)
                builder.complete("task", open_task[0], source, open_task[1],
                                 t_fs - open_task[1], args=args)
        elif kind == "task.request":
            builder.instant("task", f"request:{fields['task']}", source,
                            t_fs, args=dict(fields))
        elif kind in ("lem.decision", "lem.deferral", "lem.sleep",
                      "gem.decision"):
            builder.instant(kind.split(".", 1)[0], kind, source, t_fs,
                            args=dict(fields))
        elif kind == "sample.window":
            builder.counter("battery_soc", source, t_fs,
                            {"state_of_charge": fields["state_of_charge"]})
            builder.counter("temperature_c", source, t_fs,
                            {"temperature_c": fields["temperature_c"]})
        elif kind in ("battery.level", "thermal.level"):
            builder.instant(kind.split(".", 1)[0], f"{kind}:{fields['level']}",
                            source, t_fs, args=dict(fields))

    # Close still-open residency and ownership slices at the last event.
    for source, (state, start_fs) in psm_open.items():
        if end_fs > start_fs:
            builder.async_slice("psm", state, source, start_fs, end_fs)
    for master, (words, start_fs) in bus_open.items():
        if end_fs > start_fs:
            builder.async_slice("bus", master, "bus", start_fs, end_fs,
                                args={"words": words})

    return {"traceEvents": builder.out, "displayTimeUnit": "ms"}


def write_perfetto(
    events: Sequence[TraceEvent],
    path: Union[str, Path],
    process_name: str = "repro-dpm",
) -> int:
    """Write a Chrome-trace JSON file; returns the trace-event count."""
    document = build_perfetto(events, process_name=process_name)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(document["traceEvents"])
