"""Typed event schema for the structured tracing layer.

Every event a :class:`~repro.obs.tracer.Tracer` records carries a *kind*
from the registry below.  The registry is the single source of truth for
the event taxonomy: sinks group events by the category prefix (the part
before the first ``.``), spec validation checks ``TraceDef.events``
entries against it, and :func:`validate_event` lets tests assert that
every emitted event matches its documented shape bit-for-bit.

Field checkers are deliberately strict about ``bool`` vs ``int`` (Python
bools *are* ints) so a schema drift cannot hide behind duck typing.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.errors import ReproError

__all__ = [
    "EVENT_TYPES",
    "EVENT_CATEGORIES",
    "EventType",
    "ObsError",
    "expand_event_filter",
    "validate_event",
]


class ObsError(ReproError):
    """Raised for malformed events or unknown event kinds/categories."""


def _is_str(value: object) -> bool:
    return isinstance(value, str)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _is_num(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def _is_bool(value: object) -> bool:
    return isinstance(value, bool)


def _is_str_list(value: object) -> bool:
    return isinstance(value, (list, tuple)) and all(isinstance(v, str) for v in value)


_CHECKER_NAMES = {
    _is_str: "str",
    _is_int: "int",
    _is_num: "number",
    _is_bool: "bool",
    _is_str_list: "list[str]",
}


#: A field checker: value -> "matches the documented type".
_Checker = Callable[[object], bool]


class EventType:
    """Documented shape of one event kind."""

    __slots__ = ("kind", "description", "required", "optional")

    def __init__(
        self,
        kind: str,
        description: str,
        required: Mapping[str, _Checker],
        optional: Optional[Mapping[str, _Checker]] = None,
    ) -> None:
        self.kind = kind
        self.description = description
        self.required = dict(required)
        self.optional = dict(optional or {})

    @property
    def category(self) -> str:
        return self.kind.split(".", 1)[0]

    def field_names(self) -> Tuple[str, ...]:
        return tuple(self.required) + tuple(self.optional)


def _event(
    kind: str,
    description: str,
    required: Mapping[str, _Checker],
    optional: Optional[Mapping[str, _Checker]] = None,
) -> Tuple[str, EventType]:
    return kind, EventType(kind, description, required, optional)


#: The full event taxonomy, keyed by kind.  Category is the prefix
#: before the first dot: task, psm, lem, gem, bus, sample, battery,
#: thermal.
EVENT_TYPES: Dict[str, EventType] = dict(
    [
        _event(
            "sim.backend",
            "kernel backend and versions of one traced run (emitted once, "
            "at instrumentation time)",
            {"backend": _is_str, "python": _is_str},
            {"reason": _is_str, "core_version": _is_str},
        ),
        _event(
            "task.request",
            "an IP submitted a task request to its LEM",
            {"task": _is_str, "priority": _is_str, "cycles": _is_int},
        ),
        _event(
            "task.start",
            "a granted task started executing on its IP",
            {"task": _is_str, "wait_us": _is_num, "duration_us": _is_num,
             "energy_j": _is_num},
        ),
        _event(
            "task.complete",
            "a task finished executing and billed its energy",
            {"task": _is_str, "energy_j": _is_num},
        ),
        _event(
            "psm.state",
            "initial PSM state at instrumentation time",
            {"state": _is_str},
        ),
        _event(
            "psm.transition",
            "a PSM state transition completed (timestamp = completion)",
            {"from_state": _is_str, "to_state": _is_str, "latency_us": _is_num,
             "energy_j": _is_num},
        ),
        _event(
            "lem.decision",
            "the LEM granted a task request, with its full RuleContext",
            {"task": _is_str, "state": _is_str, "priority": _is_str,
             "battery": _is_str, "temperature": _is_str, "deferrals": _is_int},
            {"bus": _is_str, "wait_us": _is_num, "other_ip_energy_j": _is_num},
        ),
        _event(
            "lem.deferral",
            "the LEM deferred a pending request to the defer state",
            {"task": _is_str, "state": _is_str},
        ),
        _event(
            "lem.sleep",
            "the LEM pushed its idle IP toward a low-power state",
            {"state": _is_str, "reason": _is_str},
        ),
        _event(
            "gem.decision",
            "the GEM changed the set of enabled IPs (with its ResourceView)",
            {"enabled": _is_str_list, "disabled": _is_str_list,
             "fan_on": _is_bool},
            {"battery": _is_str, "temperature": _is_str, "bus": _is_str,
             "state_of_charge": _is_num, "temperature_c": _is_num,
             "bus_occupancy": _is_num, "pending_energy_j": _is_num},
        ),
        _event(
            "bus.request",
            "a master queued a bus transfer request",
            {"master": _is_str, "words": _is_int, "priority": _is_int},
        ),
        _event(
            "bus.grant",
            "the arbiter granted the bus to a master",
            {"master": _is_str, "words": _is_int, "wait_us": _is_num},
        ),
        _event(
            "bus.release",
            "a master completed its transfer and released the bus",
            {"master": _is_str, "words": _is_int},
        ),
        _event(
            "bus.cancel",
            "a queued or granted request was cancelled",
            {"master": _is_str, "granted": _is_bool},
        ),
        _event(
            "sample.window",
            "one battery/thermal sampling window closed",
            {"state_of_charge": _is_num, "temperature_c": _is_num},
        ),
        _event(
            "battery.level",
            "the quantised battery level crossed a threshold",
            {"level": _is_str},
            {"state_of_charge": _is_num},
        ),
        _event(
            "thermal.level",
            "the quantised thermal level crossed a threshold",
            {"level": _is_str},
            {"temperature_c": _is_num},
        ),
    ]
)

#: Categories (kind prefixes) accepted anywhere an event filter is read.
EVENT_CATEGORIES: Tuple[str, ...] = tuple(
    sorted({event.category for event in EVENT_TYPES.values()})
)


def expand_event_filter(names: Optional[Iterable[str]]) -> Optional[FrozenSet[str]]:
    """Expand a mix of kinds and categories into a frozenset of kinds.

    ``None`` or an empty sequence means "no filter" (trace everything)
    and returns ``None`` so the tracer's hot path can skip the set test.
    """
    if names is None:
        return None
    names = tuple(names)
    if not names:
        return None
    kinds = set()
    for name in names:
        if name in EVENT_TYPES:
            kinds.add(name)
        elif name in EVENT_CATEGORIES:
            kinds.update(
                kind for kind, event in EVENT_TYPES.items()
                if event.category == name
            )
        else:
            raise ObsError(
                f"unknown event kind or category {name!r}; expected one of "
                f"{', '.join(sorted(EVENT_TYPES))} or a category in "
                f"{', '.join(EVENT_CATEGORIES)}"
            )
    return frozenset(kinds)


def validate_event(event: Mapping) -> None:
    """Assert one serialized event matches its documented type.

    ``event`` is the flat mapping a sink writes: ``t_fs``, ``kind``,
    ``source`` plus the kind's payload fields.  Raises :class:`ObsError`
    on any deviation.
    """
    for key in ("t_fs", "kind", "source"):
        if key not in event:
            raise ObsError(f"event is missing the {key!r} envelope field: {event!r}")
    if not _is_int(event["t_fs"]) or event["t_fs"] < 0:
        raise ObsError(f"event t_fs must be a non-negative int: {event!r}")
    if not _is_str(event["source"]):
        raise ObsError(f"event source must be a string: {event!r}")
    kind = event["kind"]
    spec = EVENT_TYPES.get(kind)
    if spec is None:
        raise ObsError(f"unknown event kind {kind!r}")
    payload = {k: v for k, v in event.items() if k not in ("t_fs", "kind", "source")}
    for name, checker in spec.required.items():
        if name not in payload:
            raise ObsError(f"{kind} event is missing required field {name!r}: {event!r}")
        if not checker(payload[name]):
            raise ObsError(
                f"{kind} field {name!r} must be {_CHECKER_NAMES[checker]}, "
                f"got {payload[name]!r}"
            )
    for name, value in payload.items():
        if name in spec.required:
            continue
        checker = spec.optional.get(name)
        if checker is None:
            raise ObsError(f"{kind} event carries undocumented field {name!r}")
        if not checker(value):
            raise ObsError(
                f"{kind} field {name!r} must be {_CHECKER_NAMES[checker]}, "
                f"got {value!r}"
            )
