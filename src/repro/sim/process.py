"""Processes: the concurrent units of behaviour in the simulation kernel.

Two kinds of processes exist, mirroring SystemC:

* **Thread processes** (:class:`ThreadProcess`) wrap a generator function.
  The generator ``yield``\\ s *wait specifications* and is resumed by the
  kernel when the wait matures.  Valid wait specifications are:

  - a :class:`~repro.sim.simtime.SimTime` duration,
  - an :class:`~repro.sim.event.Event`,
  - an :class:`AnyOf` / :class:`AllOf` combinator over events,
  - ``None`` (wait on the process' static sensitivity, if any).

* **Method processes** (:class:`MethodProcess`) wrap a plain callable that is
  re-invoked from scratch every time an event in its static sensitivity list
  is notified.  Method processes never suspend.

The dominant wait in this library is ``yield SimTime`` (a pure timed wait):
both :meth:`ThreadProcess.resume` and the arming logic special-case it so a
timed resume touches no waiter lists, no cancellation and no ``AllOf``
bookkeeping.

Users normally do not instantiate these classes directly; they call
:meth:`repro.sim.module.Module.add_thread` and
:meth:`repro.sim.module.Module.add_method`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Generator, Iterable, List, Optional, Sequence, Union

from repro.errors import SchedulingError
from repro.sim.event import Event
from repro.sim.simtime import SimTime

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Kernel

__all__ = ["AnyOf", "AllOf", "Process", "ThreadProcess", "MethodProcess", "WaitSpec"]


class AnyOf:
    """Wait specification: resume when *any* of the given events fires."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events: List[Event] = list(events)
        if not self.events:
            raise SchedulingError("AnyOf requires at least one event")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AnyOf({[e.name for e in self.events]})"


class AllOf:
    """Wait specification: resume when *all* of the given events have fired."""

    __slots__ = ("events",)

    def __init__(self, events: Iterable[Event]) -> None:
        self.events: List[Event] = list(events)
        if not self.events:
            raise SchedulingError("AllOf requires at least one event")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"AllOf({[e.name for e in self.events]})"


WaitSpec = Union[SimTime, Event, AnyOf, AllOf, None]


class Process:
    """Common base for thread and method processes."""

    __slots__ = (
        "kernel",
        "name",
        "static_sensitivity",
        "terminated",
        "_pending_timeout",
        "_waiting_events",
        "_remaining_all_of",
    )

    def __init__(self, kernel: "Kernel", name: str) -> None:
        self.kernel = kernel
        self.name = name
        self.static_sensitivity: List[Event] = []
        self.terminated = False
        self._pending_timeout = None  # TimedEntry handle for a pending timed wait
        self._waiting_events: List[Event] = []
        self._remaining_all_of: set = set()

    # -- wiring -----------------------------------------------------------
    def set_sensitivity(self, events: Sequence[Event]) -> None:
        """Define the static sensitivity list of this process."""
        self.static_sensitivity = list(events)

    # -- kernel interface ---------------------------------------------------
    def start(self) -> None:
        """Called once at the start of simulation."""
        raise NotImplementedError

    def resume(self, trigger: Optional[Event] = None) -> None:
        """Called by the kernel when a wait of this process matures."""
        raise NotImplementedError

    def kill(self) -> None:
        """Terminate the process, withdrawing any pending wait.

        The process is removed from every event waiter list and its pending
        timeout (if any) is cancelled, so nothing will ever resume it again.
        Killing an already terminated process is a no-op.
        """
        if self.terminated:
            return
        self.terminated = True
        self._clear_waits()

    def _clear_waits(self) -> None:
        if self._waiting_events:
            for event in self._waiting_events:
                event.remove_waiter(self)
            self._waiting_events = []
        if self._pending_timeout is not None:
            self.kernel.cancel_timed(self._pending_timeout)
            self._pending_timeout = None
        if self._remaining_all_of:
            self._remaining_all_of = set()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = type(self).__name__
        return f"{kind}({self.name!r}, terminated={self.terminated})"


class ThreadProcess(Process):
    """A generator-based process (SystemC ``SC_THREAD`` analogue)."""

    __slots__ = ("_func", "_generator")

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        func: Callable[[], Generator[WaitSpec, None, None]],
    ) -> None:
        super().__init__(kernel, name)
        self._func = func
        self._generator: Optional[Generator[WaitSpec, None, None]] = None

    def start(self) -> None:
        """Create the generator and run it up to its first wait."""
        if self.terminated:  # killed before the simulation started
            return
        result = self._func()
        if result is None:
            # A plain function with no yield: it ran to completion already.
            self.terminated = True
            return
        self._generator = result
        self._advance()

    def kill(self) -> None:
        """Terminate the thread, running its pending ``finally`` blocks.

        On top of the base cleanup the suspended generator is closed, which
        raises ``GeneratorExit`` at the suspension point — ``try/finally``
        cleanup in the generator (e.g. withdrawing a queued bus request)
        runs exactly as it would for ordinary generator disposal.

        A process may also kill *itself* (directly or through a synchronous
        call made from its own frame): the executing generator cannot be
        closed from within, so termination completes — and the ``finally``
        blocks run — when the generator reaches its next ``yield``.
        """
        if self.terminated:
            return
        super().kill()
        generator = self._generator
        if generator is None:
            return
        if generator.gi_running:
            return  # self-kill: _advance closes the generator at its next yield
        self._generator = None
        generator.close()

    def resume(self, trigger: Optional[Event] = None) -> None:
        """Resume after a wait; honours AllOf bookkeeping."""
        if self.terminated:
            return
        if self._remaining_all_of:
            if trigger is not None:
                self._remaining_all_of.discard(trigger)
                trigger.remove_waiter(self)
            if self._remaining_all_of:
                # Still waiting for the remaining events; re-arm on the trigger
                # is not needed because other events keep us registered.
                return
        # Fast path: a matured pure timed wait (the kernel clears the handle
        # before resuming) leaves nothing to unregister.
        if self._waiting_events or self._pending_timeout is not None or self._remaining_all_of:
            self._clear_waits()
        self._advance()

    # -- internals ----------------------------------------------------------
    def _advance(self) -> None:
        generator = self._generator
        if generator is None:
            self.terminated = True
            return
        try:
            spec = next(generator)
        except StopIteration:
            self.terminated = True
            return
        if self.terminated:
            # The process killed itself while executing; now that the
            # generator is suspended it can be closed (finally blocks run).
            self._generator = None
            generator.close()
            return
        if isinstance(spec, SimTime):
            # Dominant wait: a plain timed delay, no event registration.
            self._pending_timeout = self.kernel.schedule_process_timeout(self, spec)
            return
        self._arm(spec)

    def _arm(self, spec: WaitSpec) -> None:
        """Register the wait described by ``spec`` with the kernel."""
        if spec is None:
            if not self.static_sensitivity:
                raise SchedulingError(
                    f"process {self.name!r} yielded None but has no static sensitivity"
                )
            for event in self.static_sensitivity:
                event.add_waiter(self)
                self._waiting_events.append(event)
            return
        if isinstance(spec, SimTime):  # pragma: no cover - handled in _advance
            self._pending_timeout = self.kernel.schedule_process_timeout(self, spec)
            return
        if isinstance(spec, Event):
            spec.add_waiter(self)
            self._waiting_events.append(spec)
            return
        if isinstance(spec, AnyOf):
            for event in spec.events:
                event.add_waiter(self)
                self._waiting_events.append(event)
            return
        if isinstance(spec, AllOf):
            self._remaining_all_of = set(spec.events)
            for event in spec.events:
                event.add_waiter(self)
                self._waiting_events.append(event)
            return
        raise SchedulingError(
            f"process {self.name!r} yielded an invalid wait specification: {spec!r}"
        )


class MethodProcess(Process):
    """A callable re-run on every notification of its sensitivity list."""

    __slots__ = ("_func", "dont_initialize")

    def __init__(
        self,
        kernel: "Kernel",
        name: str,
        func: Callable[[], None],
        dont_initialize: bool = False,
    ) -> None:
        super().__init__(kernel, name)
        self._func = func
        self.dont_initialize = dont_initialize

    def start(self) -> None:
        """Run once at time zero (unless ``dont_initialize``) and re-arm."""
        if self.terminated:  # killed before the simulation started
            return
        self._rearm()
        if not self.dont_initialize:
            self._func()

    def resume(self, trigger: Optional[Event] = None) -> None:
        if self.terminated:
            return
        self._rearm()
        self._func()

    def _rearm(self) -> None:
        for event in self.static_sensitivity:
            event.add_waiter(self)
