"""Backend resolution for the accelerated ("native") kernel core.

The kernel's hot path — the timed notification heap — has a compiled C
implementation in :mod:`repro.sim._nativecore`, built as an *optional*
extension (``pip install .[native]`` or ``python setup.py build_ext
--inplace``).  This module is the single place that decides which
implementation a :class:`~repro.sim.kernel.Kernel` uses:

* ``backend="python"`` — the pure-Python reference queue.  Always
  available; this is the default.
* ``backend="native"`` — the compiled queue.  Falls back to Python when
  the extension is not importable (no compiler at install time, source
  checkout without a build, unsupported platform); the fallback reason is
  recorded on the :class:`BackendResolution` so CLIs and traces can report
  *why* a run is not accelerated.
* ``backend="auto"`` — native when available, python otherwise, with no
  fallback complaint either way.
* ``backend=None`` — consult the ``REPRO_SIM_BACKEND`` environment
  variable, defaulting to ``python``.

The compiled queue is pop-order-identical to the Python queue (ties
included), so the two backends produce bit-identical simulations; the
golden suite pins this in CI.  The only documented divergence: the native
queue holds times in a C int64, so scheduling beyond ~9.2e3 simulated
seconds raises ``OverflowError`` instead of running arbitrarily far.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = [
    "BACKENDS",
    "ENV_VAR",
    "BackendResolution",
    "available",
    "load",
    "resolve_backend",
    "unavailable_reason",
]

#: accepted values of the ``backend`` parameter / ``REPRO_SIM_BACKEND``
BACKENDS = ("python", "native", "auto")

#: environment variable consulted when no explicit backend is requested
ENV_VAR = "REPRO_SIM_BACKEND"

# Cached import probe: (module or None, reason string when None).
_probe = None


def load():
    """The compiled core module, or ``None`` when it is not importable.

    The import is probed once per process and cached — backend resolution
    runs on every Kernel construction, which tests do thousands of times.
    """
    global _probe
    if _probe is None:
        try:
            from repro.sim import _nativecore

            _probe = (_nativecore, "")
        except ImportError as error:
            _probe = (None, f"compiled core not importable: {error}")
    return _probe[0]


def available() -> bool:
    """True when the compiled core can be imported."""
    return load() is not None


def unavailable_reason() -> str:
    """Why the compiled core is unavailable (empty string when it is)."""
    load()
    return _probe[1]


@dataclass(frozen=True)
class BackendResolution:
    """Outcome of resolving a backend request against availability."""

    #: the backend actually in effect: ``"python"`` or ``"native"``
    backend: str
    #: what was asked for (after the environment default was applied)
    requested: str
    #: non-empty when a ``native`` request fell back to ``python``
    reason: str = ""

    @property
    def fell_back(self) -> bool:
        """True when an explicit ``native`` request could not be honoured."""
        return bool(self.reason)

    def describe(self) -> str:
        """One-line human-readable form for CLI output and reports."""
        if self.reason:
            return f"{self.backend} (requested native: {self.reason})"
        return self.backend


def resolve_backend(requested: "str | None" = None) -> BackendResolution:
    """Resolve a backend request to the implementation actually used.

    ``None`` consults ``REPRO_SIM_BACKEND`` (default ``python``).  An
    unknown value — from the parameter or the environment — raises
    :class:`~repro.errors.ConfigurationError` rather than silently running
    on an unintended backend.
    """
    if requested is None:
        requested = os.environ.get(ENV_VAR) or "python"
    if requested not in BACKENDS:
        raise ConfigurationError(
            f"unknown simulation backend {requested!r} "
            f"(expected one of: {', '.join(BACKENDS)})"
        )
    if requested == "python":
        return BackendResolution("python", "python")
    if available():
        return BackendResolution("native", requested)
    if requested == "auto":
        # "Best available" got the best available; nothing to complain about.
        return BackendResolution("python", "auto")
    return BackendResolution("python", "native", unavailable_reason())
