"""The discrete-event scheduler (SystemC-like evaluate/update/delta kernel).

The :class:`Kernel` implements the classic SystemC 2.0 scheduling algorithm:

1. *Evaluate phase*: run every runnable process.  Processes may write
   primitive channels (signals), notify events immediately, or schedule
   delta/timed notifications.
2. *Update phase*: apply the pending writes of every primitive channel that
   requested an update.
3. *Delta notification phase*: fire delta-notified events, making their
   waiters runnable.  If any process became runnable, repeat from step 1 at
   the same simulated time (one *delta cycle* has elapsed).
4. Otherwise advance simulated time to the earliest timed notification and
   repeat, until there is no pending activity, the requested duration has
   elapsed, or :meth:`Kernel.stop` was called.

The kernel is deliberately independent from the module system: it only knows
about :class:`~repro.sim.event.Event` and
:class:`~repro.sim.process.Process` objects, which keeps it easy to test in
isolation and to reuse for non-hardware models (the battery and thermal
models use plain processes, for instance).

Internally the hot path works on raw integer femtoseconds: the timed queue,
:meth:`Kernel._advance_to` and the time comparisons in :meth:`Kernel.run`
never build :class:`~repro.sim.simtime.SimTime` objects per event.  A cached
``SimTime`` view of the current instant is refreshed once per time advance,
so :attr:`Kernel.now` stays the public value type without per-read
allocation.  Pure timed waits (``yield SimTime``) are resumed without any
waiter-list or cancellation bookkeeping — the dominant activation in this
library costs one generator ``next()`` plus one heap push.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, List, Optional, Set

from repro.errors import SchedulingError, SimulationError
from repro.sim.event import Event, TimedQueue
from repro.sim.native import BackendResolution, load as _load_native_core, resolve_backend
from repro.sim.process import MethodProcess, Process, ThreadProcess
from repro.sim.simtime import SimTime, ZERO_TIME

__all__ = ["Kernel", "KernelStatistics"]


@dataclass
class KernelStatistics:
    """Counters describing how much work a simulation performed."""

    process_activations: int = 0
    delta_cycles: int = 0
    timed_notifications: int = 0
    immediate_notifications: int = 0
    signal_updates: int = 0
    events_created: int = 0
    processes_created: int = 0
    time_advances: int = 0
    extra: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        """Return the statistics as a plain dictionary."""
        data = {
            "process_activations": self.process_activations,
            "delta_cycles": self.delta_cycles,
            "timed_notifications": self.timed_notifications,
            "immediate_notifications": self.immediate_notifications,
            "signal_updates": self.signal_updates,
            "events_created": self.events_created,
            "processes_created": self.processes_created,
            "time_advances": self.time_advances,
        }
        data.update(self.extra)
        return data


class Kernel:
    """Discrete-event scheduler with SystemC evaluate/update/delta semantics.

    ``backend`` selects the timed-queue implementation: ``"python"`` (the
    reference heap, default), ``"native"`` (the compiled heap of
    :mod:`repro.sim._nativecore`, bit-identical pop order) or ``"auto"``;
    ``None`` consults ``REPRO_SIM_BACKEND``.  An explicit ``native`` request
    falls back to Python when the extension is not built — the resolution
    (with the fallback reason) is exposed as :attr:`backend_resolution`.
    """

    def __init__(self, backend: Optional[str] = None) -> None:
        resolution = resolve_backend(backend)
        self.backend_resolution: BackendResolution = resolution
        self.backend: str = resolution.backend
        self._now_fs: int = 0
        self._now: SimTime = ZERO_TIME  # cached SimTime view of _now_fs
        # Runnable entries are either a bare Process (timed wake, the common
        # case) or a (Process, Event) tuple when an event wake must carry its
        # trigger for AllOf bookkeeping.
        self._runnable: Deque = deque()
        # The delta/update queues preserve insertion order (lists) but use
        # side sets for O(1) dedup — membership scans dominated the hot path.
        self._delta_events: List[Event] = []
        self._delta_scheduled: Set[Event] = set()
        self._update_queue: List = []
        self._update_scheduled: Set = set()
        if resolution.backend == "native":
            self._timed = _load_native_core().TimedQueue()
        else:
            self._timed = TimedQueue()
        self._processes: List[Process] = []
        self._initialized = False
        self._stop_requested = False
        self._running = False
        self.stats = KernelStatistics()
        self._end_of_delta_callbacks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------
    # Factory helpers
    # ------------------------------------------------------------------
    def event(self, name: str = "") -> Event:
        """Create a new :class:`Event` owned by this kernel."""
        self.stats.events_created += 1
        return Event(self, name)

    def create_thread(self, func, name: str) -> ThreadProcess:
        """Create and register a thread process from a generator function."""
        process = ThreadProcess(self, name, func)
        self.register_process(process)
        return process

    def create_method(self, func, sensitivity, name: str, dont_initialize: bool = False) -> MethodProcess:
        """Create and register a method process with a static sensitivity list."""
        process = MethodProcess(self, name, func, dont_initialize=dont_initialize)
        process.set_sensitivity(list(sensitivity))
        self.register_process(process)
        return process

    def register_process(self, process: Process) -> None:
        """Register an externally created process with the scheduler."""
        self._processes.append(process)
        self.stats.processes_created += 1
        if self._initialized:
            # Processes created after initialisation start immediately,
            # running up to their first wait (like sc_spawn).
            process.start()
            self.stats.process_activations += 1

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        now = self._now
        if now is None:
            # Lazily materialised: most time advances (pure timed waits) are
            # never observed through the SimTime view.
            now = self._now = SimTime(self._now_fs)
        return now

    @property
    def now_fs(self) -> int:
        """Current simulated time as raw integer femtoseconds."""
        return self._now_fs

    @property
    def is_running(self) -> bool:
        """True while :meth:`run` is executing."""
        return self._running

    @property
    def pending_activity(self) -> bool:
        """True if any work (runnable, delta or timed) remains.

        Cancelled-only timed entries do not count: the timed queue tracks its
        live entry count, so a heap full of withdrawn notifications reports
        no pending activity.
        """
        return bool(self._runnable or self._delta_events or self._update_queue or len(self._timed))

    # ------------------------------------------------------------------
    # Scheduling requests (called by events, signals and processes)
    # ------------------------------------------------------------------
    def schedule_immediate(self, event: Event) -> None:
        """Immediate notification: wake waiters within the current phase."""
        self.stats.immediate_notifications += 1
        runnable = self._runnable
        for process in event.fire():
            runnable.append((process, event))

    def schedule_delta(self, event: Event) -> None:
        """Delta notification: fire the event in the next delta cycle."""
        scheduled = self._delta_scheduled
        if event not in scheduled:
            scheduled.add(event)
            self._delta_events.append(event)

    def schedule_timed(self, event: Event, delay: SimTime):
        """Timed notification of ``event`` after ``delay``."""
        self.stats.timed_notifications += 1
        return self._timed.push(self._now_fs + delay, event)

    def schedule_process_timeout(self, process: Process, delay: SimTime):
        """Resume ``process`` after ``delay`` (a ``yield duration`` wait)."""
        self.stats.timed_notifications += 1
        return self._timed.push(self._now_fs + delay, process)

    def cancel_timed(self, handle) -> None:
        """Cancel a previously scheduled timed notification."""
        self._timed.cancel(handle)

    def request_update(self, channel) -> None:
        """Queue a primitive channel for the next update phase."""
        scheduled = self._update_scheduled
        if channel not in scheduled:
            scheduled.add(channel)
            self._update_queue.append(channel)

    def add_end_of_delta_callback(self, callback: Callable[[], None]) -> None:
        """Register a callback run at the end of every delta cycle (tracing)."""
        self._end_of_delta_callbacks.append(callback)

    def stop(self) -> None:
        """Request the simulation to stop at the end of the current delta."""
        self._stop_requested = True

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def initialize(self) -> None:
        """Start every registered process (runs them to their first wait)."""
        if self._initialized:
            return
        self._initialized = True
        for process in self._processes:
            process.start()
            self.stats.process_activations += 1
        # Resolve any activity generated during initialisation at time zero.
        self._delta_loop()

    def run(self, duration: Optional[SimTime] = None) -> SimTime:
        """Run the simulation.

        Parameters
        ----------
        duration:
            If given, simulate for at most this much additional simulated
            time.  If omitted, run until there is no pending activity or
            :meth:`stop` is called.

        Returns
        -------
        SimTime
            The simulated time at which execution stopped.
        """
        if self._running:
            raise SimulationError("kernel.run() is not reentrant")
        if duration is not None and not isinstance(duration, SimTime):
            raise TypeError(
                f"run() duration must be a SimTime, not {type(duration).__name__}"
            )
        self._running = True
        self._stop_requested = False
        try:
            if not self._initialized:
                self.initialize()
            end_fs = None if duration is None else self._now_fs + duration
            timed = self._timed
            self._delta_loop()
            while not self._stop_requested:
                next_fs = timed.next_time_fs()
                if next_fs is None:
                    break
                if end_fs is not None and next_fs > end_fs:
                    self._set_now(end_fs)
                    break
                self._advance_to(next_fs)
                self._delta_loop()
            if end_fs is not None and not self._stop_requested:
                if timed.next_time_fs() is None and self._now_fs < end_fs:
                    # Starvation before the requested end time: report the
                    # requested end so repeated run() calls stay monotonic.
                    self._set_now(end_fs)
            return self.now
        finally:
            self._running = False

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _set_now(self, now_fs: int) -> None:
        self._now_fs = now_fs
        self._now = None  # SimTime view rebuilt on demand (see Kernel.now)

    def _advance_to(self, next_fs: int) -> None:
        if next_fs < self._now_fs:  # pragma: no cover - defensive
            raise SchedulingError("attempted to move simulated time backwards")
        self._set_now(next_fs)
        self.stats.time_advances += 1
        runnable = self._runnable
        append = runnable.append
        for payload in self._timed.pop_due(next_fs):
            cls = payload.__class__
            if cls is ThreadProcess:
                # Pure timed wake (the dominant case): drop the consumed
                # handle so the process resume skips all wait bookkeeping.
                payload._pending_timeout = None
                append(payload)
            elif cls is Event or isinstance(payload, Event):
                for process in payload.fire():
                    append((process, payload))
            else:
                append((payload, None))

    def _delta_loop(self) -> None:
        """Run evaluate/update/delta cycles until no process is runnable."""
        runnable = self._runnable
        callbacks = self._end_of_delta_callbacks
        stats = self.stats
        activations = 0
        delta_cycles = 0
        signal_updates = 0
        try:
            while (runnable or self._delta_events or self._update_queue) and not self._stop_requested:
                # Evaluate phase.
                while runnable:
                    entry = runnable.popleft()
                    if entry.__class__ is tuple:
                        process, trigger = entry
                        if process.terminated:
                            continue
                        process.resume(trigger)
                    else:
                        # Bare entries are ThreadProcess timeout wakes whose
                        # handle was already cleared: advance them directly.
                        if entry.terminated:
                            continue
                        entry._advance()
                    activations += 1
                # Update phase.
                if self._update_queue:
                    updates, self._update_queue = self._update_queue, []
                    self._update_scheduled.clear()
                    for channel in updates:
                        channel.update()
                    signal_updates += len(updates)
                # Delta notification phase.
                if self._delta_events:
                    delta_events, self._delta_events = self._delta_events, []
                    self._delta_scheduled.clear()
                    for event in delta_events:
                        for process in event.fire():
                            runnable.append((process, event))
                delta_cycles += 1
                if callbacks:
                    for callback in callbacks:
                        callback()
        finally:
            stats.process_activations += activations
            stats.delta_cycles += delta_cycles
            stats.signal_updates += signal_updates
