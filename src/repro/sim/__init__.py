"""SystemC-like discrete-event simulation kernel.

This subpackage is the substrate the paper's SystemC 2.0 models run on:
modules, ports, signals with delta-cycle semantics, thread and method
processes, events, a clock generator, tracing and a high-level
:class:`~repro.sim.simulator.Simulator` facade.
"""

from repro.sim.accuracy import AccuracyMode
from repro.sim.clock import Clock
from repro.sim.event import Event
from repro.sim.kernel import Kernel, KernelStatistics
from repro.sim.module import Module
from repro.sim.native import BackendResolution, resolve_backend
from repro.sim.port import InOutPort, InPort, OutPort, Port
from repro.sim.process import AllOf, AnyOf, MethodProcess, Process, ThreadProcess
from repro.sim.signal import Signal
from repro.sim.simtime import (
    SimTime,
    TimeUnit,
    ZERO_TIME,
    fs,
    ms,
    ns,
    ps,
    sec,
    us,
)
from repro.sim.simulator import SimulationReport, Simulator
from repro.sim.trace import TraceRecorder

__all__ = [
    "AccuracyMode",
    "AllOf",
    "AnyOf",
    "BackendResolution",
    "Clock",
    "Event",
    "InOutPort",
    "InPort",
    "Kernel",
    "KernelStatistics",
    "MethodProcess",
    "Module",
    "OutPort",
    "Port",
    "Process",
    "SimTime",
    "SimulationReport",
    "Simulator",
    "Signal",
    "ThreadProcess",
    "TimeUnit",
    "TraceRecorder",
    "ZERO_TIME",
    "fs",
    "ms",
    "ns",
    "ps",
    "resolve_backend",
    "sec",
    "us",
]
