"""Simulated time for the discrete-event kernel.

Time is stored internally as an integer number of *femtoseconds*, mirroring
SystemC's ``sc_time`` which uses an integer count of a fixed resolution.
Using integers keeps event ordering exact: two events scheduled at the same
instant compare equal regardless of how the instant was computed.

The public entry points are :class:`TimeUnit`, :class:`SimTime` and the
convenience constructors :func:`fs`, :func:`ps`, :func:`ns`, :func:`us`,
:func:`ms` and :func:`sec`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum
from typing import Union

from repro.errors import SimulationError

__all__ = [
    "TimeUnit",
    "SimTime",
    "ZERO_TIME",
    "fs",
    "ps",
    "ns",
    "us",
    "ms",
    "sec",
]


class TimeUnit(Enum):
    """Time units supported by :class:`SimTime`, with their femtosecond scale."""

    FS = 1
    PS = 1_000
    NS = 1_000_000
    US = 1_000_000_000
    MS = 1_000_000_000_000
    S = 1_000_000_000_000_000

    @property
    def femtoseconds(self) -> int:
        """Number of femtoseconds in one unit."""
        return self.value

    @property
    def symbol(self) -> str:
        """Short printable symbol (``"ns"``, ``"us"``...)."""
        return self.name.lower()


@dataclass(frozen=True, order=True)
class SimTime:
    """An absolute instant or a duration of simulated time.

    Instances are immutable and totally ordered.  Arithmetic keeps full
    integer precision; scaling by a float rounds to the nearest femtosecond.

    Examples
    --------
    >>> SimTime.from_value(5, TimeUnit.NS) + SimTime.from_value(500, TimeUnit.PS)
    SimTime(5.5 ns)
    >>> ns(2) * 3 == ns(6)
    True
    """

    femtoseconds: int = 0

    # -- constructors -------------------------------------------------
    @staticmethod
    def from_value(value: Union[int, float], unit: TimeUnit) -> "SimTime":
        """Build a :class:`SimTime` from ``value`` expressed in ``unit``."""
        if value < 0:
            raise SimulationError(f"simulated time cannot be negative: {value} {unit.symbol}")
        if not math.isfinite(value):
            raise SimulationError(f"simulated time must be finite: {value!r}")
        return SimTime(int(round(value * unit.femtoseconds)))

    # -- conversions ---------------------------------------------------
    def to_value(self, unit: TimeUnit) -> float:
        """Return this time expressed in ``unit`` as a float."""
        return self.femtoseconds / unit.femtoseconds

    @property
    def seconds(self) -> float:
        """This time expressed in seconds."""
        return self.to_value(TimeUnit.S)

    @property
    def nanoseconds(self) -> float:
        """This time expressed in nanoseconds."""
        return self.to_value(TimeUnit.NS)

    @property
    def is_zero(self) -> bool:
        """True when the time equals zero."""
        return self.femtoseconds == 0

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        return SimTime(self.femtoseconds + other.femtoseconds)

    def __sub__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            return NotImplemented
        if other.femtoseconds > self.femtoseconds:
            raise SimulationError("simulated time subtraction would be negative")
        return SimTime(self.femtoseconds - other.femtoseconds)

    def __mul__(self, factor: Union[int, float]) -> "SimTime":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        if factor < 0:
            raise SimulationError("cannot scale a simulated time by a negative factor")
        return SimTime(int(round(self.femtoseconds * factor)))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["SimTime", int, float]):
        if isinstance(other, SimTime):
            if other.femtoseconds == 0:
                raise ZeroDivisionError("division by zero simulated time")
            return self.femtoseconds / other.femtoseconds
        if isinstance(other, (int, float)):
            if other == 0:
                raise ZeroDivisionError("division of simulated time by zero")
            if other < 0:
                raise SimulationError("cannot divide a simulated time by a negative factor")
            return SimTime(int(round(self.femtoseconds / other)))
        return NotImplemented

    def __bool__(self) -> bool:
        return self.femtoseconds != 0

    # -- display -------------------------------------------------------
    def _best_unit(self) -> TimeUnit:
        for unit in (TimeUnit.S, TimeUnit.MS, TimeUnit.US, TimeUnit.NS, TimeUnit.PS):
            if self.femtoseconds >= unit.femtoseconds:
                return unit
        return TimeUnit.FS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        unit = self._best_unit()
        return f"SimTime({self.to_value(unit):g} {unit.symbol})"

    def __str__(self) -> str:
        unit = self._best_unit()
        return f"{self.to_value(unit):g} {unit.symbol}"


ZERO_TIME = SimTime(0)


def fs(value: Union[int, float]) -> SimTime:
    """Femtoseconds constructor: ``fs(3)`` is three femtoseconds."""
    return SimTime.from_value(value, TimeUnit.FS)


def ps(value: Union[int, float]) -> SimTime:
    """Picoseconds constructor."""
    return SimTime.from_value(value, TimeUnit.PS)


def ns(value: Union[int, float]) -> SimTime:
    """Nanoseconds constructor."""
    return SimTime.from_value(value, TimeUnit.NS)


def us(value: Union[int, float]) -> SimTime:
    """Microseconds constructor."""
    return SimTime.from_value(value, TimeUnit.US)


def ms(value: Union[int, float]) -> SimTime:
    """Milliseconds constructor."""
    return SimTime.from_value(value, TimeUnit.MS)


def sec(value: Union[int, float]) -> SimTime:
    """Seconds constructor."""
    return SimTime.from_value(value, TimeUnit.S)
