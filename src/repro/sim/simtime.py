"""Simulated time for the discrete-event kernel.

Time is stored internally as an integer number of *femtoseconds*, mirroring
SystemC's ``sc_time`` which uses an integer count of a fixed resolution.
Using integers keeps event ordering exact: two events scheduled at the same
instant compare equal regardless of how the instant was computed.

:class:`SimTime` subclasses :class:`int`, so an instance *is* its
femtosecond count.  That makes comparisons, hashing and heap ordering run at
C speed and lets the kernel hot path (the timed queue, ``Kernel._advance_to``
and the signal timestamps) work on raw integers while ``SimTime`` stays the
public value type at layer boundaries.  The SimTime-specific operators are
preserved: ``+``/``-`` between two times (adding a unitless number raises
``TypeError``), scaling by a scalar, and ``time / time`` returning a plain
ratio.  One caveat of the int subclassing: with a plain ``int`` on the
*left* (``3 + ns(5)``), int's own operator runs and yields a plain integer
of femtoseconds — the kernel relies on exactly that for its raw-integer
arithmetic.

The public entry points are :class:`TimeUnit`, :class:`SimTime` and the
convenience constructors :func:`fs`, :func:`ps`, :func:`ns`, :func:`us`,
:func:`ms` and :func:`sec`.
"""

from __future__ import annotations

import math
from enum import Enum
from typing import Union

from repro.errors import SimulationError

__all__ = [
    "TimeUnit",
    "SimTime",
    "ZERO_TIME",
    "fs",
    "ps",
    "ns",
    "us",
    "ms",
    "sec",
]


class TimeUnit(Enum):
    """Time units supported by :class:`SimTime`, with their femtosecond scale."""

    FS = 1
    PS = 1_000
    NS = 1_000_000
    US = 1_000_000_000
    MS = 1_000_000_000_000
    S = 1_000_000_000_000_000

    @property
    def femtoseconds(self) -> int:
        """Number of femtoseconds in one unit."""
        return self.value

    @property
    def symbol(self) -> str:
        """Short printable symbol (``"ns"``, ``"us"``...)."""
        return self.name.lower()


_FS_PER_S = 1_000_000_000_000_000
_FS_PER_NS = 1_000_000


class SimTime(int):
    """An absolute instant or a duration of simulated time.

    Instances are immutable and totally ordered.  Arithmetic keeps full
    integer precision; scaling by a float rounds to the nearest femtosecond.

    Examples
    --------
    >>> SimTime.from_value(5, TimeUnit.NS) + SimTime.from_value(500, TimeUnit.PS)
    SimTime(5.5 ns)
    >>> ns(2) * 3 == ns(6)
    True
    """

    __slots__ = ()

    def __new__(cls, femtoseconds: int = 0) -> "SimTime":
        return int.__new__(cls, femtoseconds)

    # -- constructors -------------------------------------------------
    @staticmethod
    def from_value(value: Union[int, float], unit: TimeUnit) -> "SimTime":
        """Build a :class:`SimTime` from ``value`` expressed in ``unit``."""
        if value < 0:
            raise SimulationError(f"simulated time cannot be negative: {value} {unit.symbol}")
        if not math.isfinite(value):
            raise SimulationError(f"simulated time must be finite: {value!r}")
        # unit._value_ skips the DynamicClassAttribute descriptor of .value,
        # which is measurable on hot construction paths.
        return SimTime(int(round(value * unit._value_)))

    # -- conversions ---------------------------------------------------
    @property
    def femtoseconds(self) -> int:
        """The raw femtosecond count as a plain integer."""
        return int(self)

    def to_value(self, unit: TimeUnit) -> float:
        """Return this time expressed in ``unit`` as a float."""
        return int(self) / unit.value

    @property
    def seconds(self) -> float:
        """This time expressed in seconds."""
        return int(self) / _FS_PER_S

    @property
    def nanoseconds(self) -> float:
        """This time expressed in nanoseconds."""
        return int(self) / _FS_PER_NS

    @property
    def is_zero(self) -> bool:
        """True when the time equals zero."""
        return int(self) == 0

    # -- arithmetic ----------------------------------------------------
    def __add__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            # Raise eagerly instead of returning NotImplemented: int's
            # reflected __radd__ would otherwise silently treat a unitless
            # number as femtoseconds (``ns(5) + 3``).
            raise TypeError(
                f"can only add SimTime to SimTime, not {type(other).__name__}"
            )
        return SimTime(int(self) + int(other))

    def __sub__(self, other: "SimTime") -> "SimTime":
        if not isinstance(other, SimTime):
            raise TypeError(
                f"can only subtract SimTime from SimTime, not {type(other).__name__}"
            )
        if int(other) > int(self):
            raise SimulationError("simulated time subtraction would be negative")
        return SimTime(int(self) - int(other))

    def __rsub__(self, other):
        # Block int's reflected subtraction: ``3 - ns(1)`` would otherwise
        # silently produce a plain (possibly negative) femtosecond count.
        raise TypeError(
            f"can only subtract SimTime from SimTime, not {type(other).__name__}"
        )

    def __mul__(self, factor: Union[int, float]) -> "SimTime":
        if isinstance(factor, SimTime) or not isinstance(factor, (int, float)):
            return NotImplemented
        if factor < 0:
            raise SimulationError("cannot scale a simulated time by a negative factor")
        return SimTime(int(round(int(self) * factor)))

    __rmul__ = __mul__

    def __truediv__(self, other: Union["SimTime", int, float]):
        if isinstance(other, SimTime):
            if int(other) == 0:
                raise ZeroDivisionError("division by zero simulated time")
            return int(self) / int(other)
        if isinstance(other, (int, float)):
            if other == 0:
                raise ZeroDivisionError("division of simulated time by zero")
            if other < 0:
                raise SimulationError("cannot divide a simulated time by a negative factor")
            return SimTime(int(round(int(self) / other)))
        return NotImplemented

    # `__bool__`, `__eq__`, ordering and `__hash__` are int's (C speed).

    # -- display -------------------------------------------------------
    def _best_unit(self) -> TimeUnit:
        value = int(self)
        for unit in (TimeUnit.S, TimeUnit.MS, TimeUnit.US, TimeUnit.NS, TimeUnit.PS):
            if value >= unit.value:
                return unit
        return TimeUnit.FS

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        unit = self._best_unit()
        return f"SimTime({self.to_value(unit):g} {unit.symbol})"

    def __str__(self) -> str:
        unit = self._best_unit()
        return f"{self.to_value(unit):g} {unit.symbol}"

    def __format__(self, spec: str) -> str:
        # int defines __format__; route the empty spec to the SimTime string
        # rendering so f-strings keep printing "5 ns" rather than a raw count.
        if not spec:
            return self.__str__()
        return format(self.__str__(), spec)


ZERO_TIME = SimTime(0)


def _unit_constructor(name: str, unit: TimeUnit, doc: str):
    """Build one unit constructor closure.

    The closure special-cases exact integer values: an ``int`` scaled by the
    (integer) femtosecond factor needs neither the finiteness check nor the
    rounding of the general path, and both paths produce the same count.  A
    closure (rather than a shared helper called from six thin wrappers)
    keeps the fast path at a single call.  ``name`` must match the module
    binding so the constructor stays picklable (the campaign subsystem
    ships callables through multiprocessing).
    """
    factor = unit.value
    symbol = unit.symbol

    def constructor(value: Union[int, float]) -> SimTime:
        if type(value) is int:
            if value < 0:
                raise SimulationError(
                    f"simulated time cannot be negative: {value} {symbol}"
                )
            return SimTime(value * factor)
        return SimTime.from_value(value, unit)

    constructor.__name__ = name
    constructor.__qualname__ = name
    constructor.__doc__ = doc
    return constructor


fs = _unit_constructor("fs", TimeUnit.FS, "Femtoseconds constructor: ``fs(3)`` is three femtoseconds.")
ps = _unit_constructor("ps", TimeUnit.PS, "Picoseconds constructor.")
ns = _unit_constructor("ns", TimeUnit.NS, "Nanoseconds constructor.")
us = _unit_constructor("us", TimeUnit.US, "Microseconds constructor.")
ms = _unit_constructor("ms", TimeUnit.MS, "Milliseconds constructor.")
sec = _unit_constructor("sec", TimeUnit.S, "Seconds constructor.")
