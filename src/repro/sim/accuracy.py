"""Simulation accuracy modes.

The library supports two accuracy contracts, selectable per run:

* :attr:`AccuracyMode.EXACT` (the default) — every figure is bit-identical
  to the reference implementation: the battery/thermal samplers step once per
  sampling window, power-state machines mirror their status on signals every
  time, and the golden-metrics tests pin the results hex-float for hex-float.

* :attr:`AccuracyMode.FAST` — the simulation is *observationally* identical
  (every DPM decision, task grant time and power-state transition happens at
  the same simulated femtosecond), but the bookkeeping arithmetic is
  reassociated for speed: sampler windows are replayed lazily in closed form
  (one decay/SoC step per run of constant-power windows instead of one per
  sample), PSM background energy integrates over coalesced intervals, status
  mirror signals are only written while someone watches them, and waiter-less
  monitor processes are skipped entirely.  Floating-point figures may differ
  from ``exact`` within a documented relative tolerance:

  ====================================  =========
  figure                                tolerance
  ====================================  =========
  energies (J), energy-derived ratios   1e-9
  temperatures (C), state of charge     1e-6
  event times, task/transition counts   exact
  ====================================  =========

  ``tests/experiments/test_accuracy_modes.py`` enforces these bands over all
  six paper scenarios.
"""

from __future__ import annotations

from enum import Enum

__all__ = ["AccuracyMode"]


class AccuracyMode(Enum):
    """Accuracy contract of a simulation run."""

    EXACT = "exact"
    FAST = "fast"

    @property
    def is_fast(self) -> bool:
        """True for the toleranced fast-math mode."""
        return self is AccuracyMode.FAST

    def __str__(self) -> str:
        return self.value

    @staticmethod
    def from_name(name: "AccuracyMode | str | None") -> "AccuracyMode":
        """Coerce a mode name (``"exact"``/``"fast"``, case-insensitive)."""
        if name is None:
            return AccuracyMode.EXACT
        if isinstance(name, AccuracyMode):
            return name
        try:
            return AccuracyMode(str(name).lower())
        except ValueError:
            valid = ", ".join(mode.value for mode in AccuracyMode)
            raise ValueError(
                f"unknown accuracy mode {name!r} (expected one of: {valid})"
            ) from None
