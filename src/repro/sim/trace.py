"""Signal tracing: in-memory waveform capture and VCD export.

The :class:`TraceRecorder` subscribes to signal changes and stores
``(time, value)`` samples per signal.  Traces are used by the analysis layer
(state residency, transition counts) and can be exported to a minimal VCD
file for inspection in a waveform viewer.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SimulationError
from repro.sim.signal import Signal
from repro.sim.simtime import SimTime, TimeUnit, ZERO_TIME

__all__ = ["TraceRecorder"]

_VCD_ID_ALPHABET = "".join(chr(c) for c in range(33, 127))


class TraceRecorder:
    """Record the value history of a set of signals.

    Examples
    --------
    >>> trace = TraceRecorder()
    >>> trace.watch(some_signal)          # doctest: +SKIP
    >>> kernel.run(us(10))                # doctest: +SKIP
    >>> trace.history("top.psm.state")    # doctest: +SKIP
    [(SimTime(0 s), 'ON1'), ...]
    """

    def __init__(self, timescale: TimeUnit = TimeUnit.NS) -> None:
        self.timescale = timescale
        self._histories: Dict[str, List[Tuple[SimTime, object]]] = {}
        self._signals: Dict[str, Signal] = {}
        # One observer callable per traced name, kept so unwatch/close can
        # detach them again (an anonymous lambda would pin the observer —
        # and the recorder — to the signal for the signal's lifetime).
        self._observers: Dict[str, object] = {}

    # -- capture -------------------------------------------------------
    def watch(self, signal: Signal, alias: Optional[str] = None) -> None:
        """Start recording ``signal``; the initial value is stored at time 0."""
        name = alias or signal.name
        if name in self._histories:
            raise SimulationError(f"signal {name!r} is already traced")
        self._signals[name] = signal
        self._histories[name] = [(ZERO_TIME, signal.read())]
        observer = lambda when, value, key=name: self._record(key, when, value)
        self._observers[name] = observer
        signal.add_observer(observer)

    def watch_all(self, signals: Sequence[Signal]) -> None:
        """Trace every signal in ``signals``."""
        for signal in signals:
            self.watch(signal)

    def unwatch(self, name: str) -> None:
        """Stop recording one signal, detaching its observer.

        The captured history stays queryable; only live capture ends.
        """
        observer = self._observers.pop(name, None)
        if observer is None:
            raise SimulationError(f"signal {name!r} is not traced")
        self._signals[name].remove_observer(observer)

    def close(self) -> None:
        """Detach every live observer (histories stay queryable).

        Idempotent; call when the recorder's capture phase is over so the
        recorder no longer pins itself to the watched signals (and, in fast
        accuracy mode, no longer forces observer-gated writes to happen).
        """
        for name in list(self._observers):
            self.unwatch(name)

    def _record(self, name: str, when: SimTime, value: object) -> None:
        self._histories[name].append((when, value))

    # -- queries ---------------------------------------------------------
    @property
    def traced_names(self) -> List[str]:
        """Names of all traced signals."""
        return list(self._histories)

    def history(self, name: str) -> List[Tuple[SimTime, object]]:
        """Full ``(time, value)`` history of one signal (including t=0)."""
        try:
            return list(self._histories[name])
        except KeyError:
            raise SimulationError(f"signal {name!r} is not traced") from None

    def value_at(self, name: str, when: SimTime) -> object:
        """Value of the signal at simulated time ``when``."""
        history = self.history(name)
        result = history[0][1]
        for time, value in history:
            if time.femtoseconds <= when.femtoseconds:
                result = value
            else:
                break
        return result

    def change_count(self, name: str) -> int:
        """Number of recorded value changes (excluding the initial sample)."""
        return len(self.history(name)) - 1

    def durations_by_value(self, name: str, end_time: SimTime) -> Dict[object, SimTime]:
        """Total time spent at each distinct value up to ``end_time``."""
        history = self.history(name)
        durations: Dict[object, SimTime] = {}
        for index, (start, value) in enumerate(history):
            if start.femtoseconds >= end_time.femtoseconds:
                break
            stop = history[index + 1][0] if index + 1 < len(history) else end_time
            if stop.femtoseconds > end_time.femtoseconds:
                stop = end_time
            span = stop - start
            durations[value] = durations.get(value, ZERO_TIME) + span
        return durations

    # -- VCD export ---------------------------------------------------------
    def to_vcd(self, end_time: SimTime, comment: str = "repro trace") -> str:
        """Render the captured trace as a VCD document (returned as a string)."""
        out = io.StringIO()
        out.write(f"$comment {comment} $end\n")
        out.write(f"$timescale 1{self.timescale.symbol} $end\n")
        out.write("$scope module repro $end\n")
        identifiers: Dict[str, str] = {}
        for index, name in enumerate(self._histories):
            identifiers[name] = self._vcd_identifier(index)
            out.write(f"$var wire 64 {identifiers[name]} {name.replace(' ', '_')} $end\n")
        out.write("$upscope $end\n$enddefinitions $end\n")
        samples: List[Tuple[int, str, object]] = []
        for name, history in self._histories.items():
            for when, value in history:
                samples.append((when.femtoseconds, identifiers[name], value))
        samples.sort(key=lambda item: item[0])
        last_stamp = None
        for stamp_fs, identifier, value in samples:
            stamp = int(round(stamp_fs / self.timescale.femtoseconds))
            if stamp != last_stamp:
                out.write(f"#{stamp}\n")
                last_stamp = stamp
            out.write(f"s{self._vcd_value(value)} {identifier}\n")
        end_stamp = int(round(end_time.femtoseconds / self.timescale.femtoseconds))
        if last_stamp != end_stamp:
            out.write(f"#{end_stamp}\n")
        return out.getvalue()

    def write_vcd(self, path: str, end_time: SimTime, comment: str = "repro trace") -> None:
        """Write :meth:`to_vcd` output to ``path``."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_vcd(end_time, comment))

    @staticmethod
    def _vcd_identifier(index: int) -> str:
        alphabet = _VCD_ID_ALPHABET
        if index < len(alphabet):
            return alphabet[index]
        return alphabet[index // len(alphabet)] + alphabet[index % len(alphabet)]

    @staticmethod
    def _vcd_value(value: object) -> str:
        if isinstance(value, bool):
            return "1" if value else "0"
        if isinstance(value, float):
            return f"{value:.6g}"
        return str(value).replace(" ", "_")
