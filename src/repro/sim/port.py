"""Ports: typed connection points between modules and signals.

A port is a placeholder through which a module reads or writes a signal that
is owned elsewhere.  Ports are *bound* during construction (to a signal, or
to a parent module's port for hierarchical designs) and *resolved* during
elaboration, after which reads and writes are delegated to the underlying
:class:`~repro.sim.signal.Signal`.

Separating binding from resolution mirrors SystemC and lets the
:class:`~repro.sim.simulator.Simulator` detect unbound ports before the
simulation starts, which is a much friendlier failure mode than a runtime
``AttributeError`` deep inside a process.
"""

from __future__ import annotations

from typing import Generic, Optional, TypeVar, Union

from repro.errors import ElaborationError
from repro.sim.event import Event
from repro.sim.signal import Signal

__all__ = ["Port", "InPort", "OutPort", "InOutPort"]

T = TypeVar("T")


class Port(Generic[T]):
    """Base class for all port kinds."""

    direction = "inout"

    def __init__(self, name: str = "") -> None:
        self.name = name or f"port_{id(self):x}"
        self._bound_to: Optional[Union["Port[T]", Signal[T]]] = None
        self._resolved: Optional[Signal[T]] = None

    # -- binding -------------------------------------------------------
    def bind(self, target: Union["Port[T]", Signal[T]]) -> None:
        """Bind this port to a signal or to another (parent) port."""
        if self._bound_to is not None:
            raise ElaborationError(f"port {self.name!r} is already bound")
        if target is self:
            raise ElaborationError(f"port {self.name!r} cannot be bound to itself")
        self._bound_to = target

    def __call__(self, target: Union["Port[T]", Signal[T]]) -> None:
        """SystemC-style binding syntax: ``module.port(signal)``."""
        self.bind(target)

    @property
    def is_bound(self) -> bool:
        """True once :meth:`bind` has been called."""
        return self._bound_to is not None

    @property
    def is_resolved(self) -> bool:
        """True once elaboration resolved the port to a concrete signal."""
        return self._resolved is not None

    def resolve(self) -> Signal[T]:
        """Follow the binding chain down to a concrete signal."""
        if self._resolved is not None:
            return self._resolved
        seen = set()
        target = self._bound_to
        while target is not None:
            if isinstance(target, Signal):
                self._resolved = target
                return target
            if id(target) in seen:
                raise ElaborationError(f"port {self.name!r} has a circular binding")
            seen.add(id(target))
            target = target._bound_to
        raise ElaborationError(f"port {self.name!r} is not bound to any signal")

    # -- signal-like API ------------------------------------------------
    @property
    def signal(self) -> Signal[T]:
        """The resolved signal (resolving lazily if needed)."""
        return self.resolve()

    def read(self) -> T:
        """Read the bound signal's current value."""
        return self.resolve().read()

    @property
    def changed_event(self) -> Event:
        """The bound signal's value-changed event."""
        return self.resolve().changed_event

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "resolved" if self.is_resolved else ("bound" if self.is_bound else "unbound")
        return f"{type(self).__name__}({self.name!r}, {state})"


class InPort(Port[T]):
    """A read-only port."""

    direction = "in"


class OutPort(Port[T]):
    """A write-only port."""

    direction = "out"

    def write(self, value: T) -> None:
        """Write ``value`` to the bound signal."""
        self.resolve().write(value)


class InOutPort(Port[T]):
    """A bidirectional port."""

    direction = "inout"

    def write(self, value: T) -> None:
        """Write ``value`` to the bound signal."""
        self.resolve().write(value)
