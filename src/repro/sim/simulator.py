"""High-level simulator facade.

The :class:`Simulator` owns a :class:`~repro.sim.kernel.Kernel`, the
top-level modules and an optional :class:`~repro.sim.trace.TraceRecorder`.
It takes care of the boring but important lifecycle steps:

1. construct modules (user code),
2. :meth:`elaborate` — resolve every port in the hierarchy and run the
   ``end_of_elaboration`` hooks,
3. :meth:`run` for a duration (repeatable),
4. collect kernel statistics and wall-clock throughput
   (:class:`SimulationReport`), which is what the simulation-speed figure in
   the paper is reproduced from.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ElaborationError
from repro.sim.accuracy import AccuracyMode
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime, ZERO_TIME
from repro.sim.trace import TraceRecorder

__all__ = ["Simulator", "SimulationReport"]


@dataclass
class SimulationReport:
    """Summary of one :meth:`Simulator.run` call."""

    simulated_time: SimTime = ZERO_TIME
    wall_clock_seconds: float = 0.0
    kernel_stats: Dict[str, int] = field(default_factory=dict)
    cycles_simulated: float = 0.0
    backend: str = "python"

    @property
    def kilocycles_per_second(self) -> float:
        """Simulation speed in kilo clock-cycles per wall-clock second."""
        if self.wall_clock_seconds <= 0.0 or self.cycles_simulated <= 0.0:
            return 0.0
        return self.cycles_simulated / self.wall_clock_seconds / 1e3

    def as_dict(self) -> dict:
        """Plain-dictionary view, convenient for report rendering."""
        return {
            "simulated_time_s": self.simulated_time.seconds,
            "wall_clock_s": self.wall_clock_seconds,
            "cycles_simulated": self.cycles_simulated,
            "kilocycles_per_second": self.kilocycles_per_second,
            "backend": self.backend,
            **self.kernel_stats,
        }


class Simulator:
    """Owns the kernel, the module hierarchy and the trace recorder."""

    def __init__(
        self,
        name: str = "sim",
        trace: bool = False,
        accuracy: "AccuracyMode | str" = AccuracyMode.EXACT,
        backend: Optional[str] = None,
    ) -> None:
        self.name = name
        self.accuracy = AccuracyMode.from_name(accuracy)
        self.kernel = Kernel(backend=backend)
        self._top_modules: List[Module] = []
        self.trace: Optional[TraceRecorder] = TraceRecorder() if trace else None
        self._elaborated = False
        self._last_report = SimulationReport()

    @property
    def backend(self) -> str:
        """The timed-queue backend in effect (``"python"`` or ``"native"``)."""
        return self.kernel.backend

    @property
    def backend_resolution(self):
        """Full :class:`~repro.sim.native.BackendResolution` of this run."""
        return self.kernel.backend_resolution

    # -- construction ------------------------------------------------------
    def add_module(self, module: Module) -> Module:
        """Register a top-level module (one without a parent)."""
        if module.parent is not None:
            raise ElaborationError(
                f"module {module.name!r} has a parent and cannot be a top-level module"
            )
        if any(existing.basename == module.basename for existing in self._top_modules):
            raise ElaborationError(f"duplicate top-level module name {module.basename!r}")
        self._top_modules.append(module)
        return module

    @property
    def top_modules(self) -> Sequence[Module]:
        """Registered top-level modules."""
        return list(self._top_modules)

    def find(self, path: str) -> Module:
        """Find a module anywhere in the design by dot-separated path."""
        head, _, rest = path.partition(".")
        for module in self._top_modules:
            if module.basename == head:
                return module.find(rest) if rest else module
        raise ElaborationError(f"no top-level module named {head!r}")

    # -- lifecycle ------------------------------------------------------------
    def elaborate(self) -> None:
        """Resolve every port in the hierarchy; idempotent.

        A simulator without modules is allowed: models built from bare kernel
        processes (no structural hierarchy) simply have nothing to elaborate.
        """
        if self._elaborated:
            return
        for top in self._top_modules:
            for module in top.walk():
                module.elaborate()
        self._elaborated = True

    def run(self, duration: Optional[SimTime] = None, clock_period: Optional[SimTime] = None) -> SimulationReport:
        """Elaborate if needed, run the kernel and return a report.

        Parameters
        ----------
        duration:
            Maximum additional simulated time; ``None`` runs to quiescence.
        clock_period:
            Reference clock period used to convert simulated time into
            "cycles" for throughput reporting.  When omitted, the report's
            cycle-based fields are zero.
        """
        self.elaborate()
        start_time = self.kernel.now
        wall_start = _wallclock.perf_counter()  # repro-lint: allow[DET-WALLCLOCK]
        end_sim_time = self.kernel.run(duration)
        wall_elapsed = _wallclock.perf_counter() - wall_start  # repro-lint: allow[DET-WALLCLOCK]
        simulated = end_sim_time - start_time
        cycles = 0.0
        if clock_period is not None and not clock_period.is_zero:
            cycles = simulated / clock_period
        self._last_report = SimulationReport(
            simulated_time=simulated,
            wall_clock_seconds=wall_elapsed,
            kernel_stats=self.kernel.stats.as_dict(),
            cycles_simulated=cycles,
            backend=self.kernel.backend,
        )
        return self._last_report

    def stop(self) -> None:
        """Request the kernel to stop."""
        self.kernel.stop()

    # -- results -----------------------------------------------------------------
    @property
    def now(self) -> SimTime:
        """Current simulated time."""
        return self.kernel.now

    @property
    def last_report(self) -> SimulationReport:
        """Report of the most recent :meth:`run` call."""
        return self._last_report

    def design_tree(self) -> str:
        """Printable tree of the whole design."""
        return "\n".join(module.design_tree() for module in self._top_modules)

    def watch(self, *signals) -> None:
        """Trace the given signals (enables tracing if it was off)."""
        if self.trace is None:
            self.trace = TraceRecorder()
        for signal in signals:
            self.trace.watch(signal)
