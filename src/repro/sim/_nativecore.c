/* Compiled hot core of the discrete-event kernel (the "native" backend).
 *
 * This module reimplements repro.sim.event.TimedQueue as a C binary heap:
 * the per-event cost of the kernel's hot path is dominated by heap pushes
 * and pops of [when_fs, seq, payload, cancelled] list entries, so moving
 * just the queue to C removes most of the interpreter work per timed
 * notification without touching the (heavily tested) scheduling logic in
 * kernel.py.
 *
 * Semantics are bit-identical to the Python queue by construction:
 *
 *   - entries are ordered by the unique key (when_fs, sequence); for unique
 *     keys *any* correct binary heap pops in exactly the key order, so pop
 *     order matches heapq including ties (resolved by insertion sequence);
 *   - cancellation is lazy: entries are flagged and skipped on pop, and the
 *     heap is compacted when dead entries outnumber live ones (same
 *     COMPACT_THRESHOLD = 64 policy as the Python queue);
 *   - pop_due() marks entries consumed so a later cancel() is a no-op.
 *
 * Times are raw integer femtoseconds held in a C int64.  2^63 fs is about
 * 9223 simulated seconds — far beyond any scenario in this library — and
 * pushes beyond that range raise OverflowError instead of wrapping.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#define COMPACT_THRESHOLD 64

/* ------------------------------------------------------------------ */
/* TimedEntry: the cancellation handle returned by TimedQueue.push()   */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    long long when_fs;
    unsigned long long seq;
    PyObject *payload;
    int done; /* cancelled or consumed */
} EntryObject;

static PyTypeObject Entry_Type;

static PyObject *
Entry_new_internal(long long when_fs, unsigned long long seq, PyObject *payload)
{
    EntryObject *entry = PyObject_GC_New(EntryObject, &Entry_Type);
    if (entry == NULL)
        return NULL;
    entry->when_fs = when_fs;
    entry->seq = seq;
    Py_INCREF(payload);
    entry->payload = payload;
    entry->done = 0;
    PyObject_GC_Track((PyObject *)entry);
    return (PyObject *)entry;
}

static int
Entry_traverse(EntryObject *self, visitproc visit, void *arg)
{
    Py_VISIT(self->payload);
    return 0;
}

static int
Entry_clear(EntryObject *self)
{
    Py_CLEAR(self->payload);
    return 0;
}

static void
Entry_dealloc(EntryObject *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    Py_XDECREF(self->payload);
    PyObject_GC_Del(self);
}

static PyObject *
Entry_get_when_fs(EntryObject *self, void *closure)
{
    return PyLong_FromLongLong(self->when_fs);
}

static PyObject *
Entry_get_cancelled(EntryObject *self, void *closure)
{
    return PyBool_FromLong(self->done);
}

static PyObject *
Entry_get_payload(EntryObject *self, void *closure)
{
    if (self->payload == NULL)
        Py_RETURN_NONE;
    Py_INCREF(self->payload);
    return self->payload;
}

static PyGetSetDef Entry_getset[] = {
    {"when_fs", (getter)Entry_get_when_fs, NULL,
     "absolute notification time in femtoseconds", NULL},
    {"cancelled", (getter)Entry_get_cancelled, NULL,
     "True once the entry was cancelled or consumed", NULL},
    {"payload", (getter)Entry_get_payload, NULL,
     "the scheduled Event or Process", NULL},
    {NULL}
};

static PyTypeObject Entry_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._nativecore.TimedEntry",
    .tp_basicsize = sizeof(EntryObject),
    .tp_dealloc = (destructor)Entry_dealloc,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "Handle of one scheduled timed notification.",
    .tp_traverse = (traverseproc)Entry_traverse,
    .tp_clear = (inquiry)Entry_clear,
    .tp_getset = Entry_getset,
};

/* ------------------------------------------------------------------ */
/* TimedQueue                                                          */
/* ------------------------------------------------------------------ */

typedef struct {
    PyObject_HEAD
    EntryObject **heap; /* owned references */
    Py_ssize_t size;    /* slots in use (live + dead) */
    Py_ssize_t capacity;
    Py_ssize_t live;
    Py_ssize_t dead;
    unsigned long long next_seq;
} QueueObject;

static inline int
entry_lt(const EntryObject *a, const EntryObject *b)
{
    if (a->when_fs != b->when_fs)
        return a->when_fs < b->when_fs;
    return a->seq < b->seq;
}

static void
heap_sift_up(EntryObject **heap, Py_ssize_t pos)
{
    EntryObject *item = heap[pos];
    while (pos > 0) {
        Py_ssize_t parent = (pos - 1) >> 1;
        if (!entry_lt(item, heap[parent]))
            break;
        heap[pos] = heap[parent];
        pos = parent;
    }
    heap[pos] = item;
}

static void
heap_sift_down(EntryObject **heap, Py_ssize_t size, Py_ssize_t pos)
{
    EntryObject *item = heap[pos];
    for (;;) {
        Py_ssize_t child = 2 * pos + 1;
        if (child >= size)
            break;
        if (child + 1 < size && entry_lt(heap[child + 1], heap[child]))
            child += 1;
        if (!entry_lt(heap[child], item))
            break;
        heap[pos] = heap[child];
        pos = child;
    }
    heap[pos] = item;
}

static int
queue_grow(QueueObject *self)
{
    Py_ssize_t new_capacity = self->capacity ? self->capacity * 2 : 64;
    EntryObject **heap =
        PyMem_Realloc(self->heap, (size_t)new_capacity * sizeof(EntryObject *));
    if (heap == NULL) {
        PyErr_NoMemory();
        return -1;
    }
    self->heap = heap;
    self->capacity = new_capacity;
    return 0;
}

/* Remove the heap root; the caller owns the returned reference. */
static EntryObject *
queue_pop_root(QueueObject *self)
{
    EntryObject *root = self->heap[0];
    self->size -= 1;
    if (self->size > 0) {
        self->heap[0] = self->heap[self->size];
        heap_sift_down(self->heap, self->size, 0);
    }
    return root;
}

static void
queue_compact(QueueObject *self)
{
    Py_ssize_t kept = 0;
    for (Py_ssize_t i = 0; i < self->size; i++) {
        EntryObject *entry = self->heap[i];
        if (entry->done) {
            Py_DECREF(entry);
        } else {
            self->heap[kept++] = entry;
        }
    }
    self->size = kept;
    self->dead = 0;
    /* Floyd heapify: unique (when, seq) keys make pop order independent of
     * the internal layout, so rebuilding preserves the original order. */
    for (Py_ssize_t i = kept / 2 - 1; i >= 0; i--)
        heap_sift_down(self->heap, kept, i);
}

static PyObject *
Queue_push(QueueObject *self, PyObject *args)
{
    PyObject *when_obj, *payload;
    if (!PyArg_ParseTuple(args, "OO:push", &when_obj, &payload))
        return NULL;
    int overflow = 0;
    long long when_fs = PyLong_AsLongLongAndOverflow(when_obj, &overflow);
    if (overflow != 0) {
        PyErr_SetString(PyExc_OverflowError,
                        "timed notification beyond the native backend's 64-bit "
                        "femtosecond range (~9.2e3 simulated seconds); use the "
                        "python backend for longer horizons");
        return NULL;
    }
    if (when_fs == -1 && PyErr_Occurred())
        return NULL;
    if (self->size == self->capacity && queue_grow(self) < 0)
        return NULL;
    PyObject *entry_obj = Entry_new_internal(when_fs, self->next_seq, payload);
    if (entry_obj == NULL)
        return NULL;
    self->next_seq += 1;
    EntryObject *entry = (EntryObject *)entry_obj;
    Py_INCREF(entry); /* heap reference */
    self->heap[self->size] = entry;
    self->size += 1;
    heap_sift_up(self->heap, self->size - 1);
    self->live += 1;
    return entry_obj; /* handle reference for the caller */
}

static PyObject *
Queue_cancel(QueueObject *self, PyObject *handle)
{
    if (!PyObject_TypeCheck(handle, &Entry_Type)) {
        PyErr_Format(PyExc_TypeError,
                     "cancel() expects a TimedEntry handle, not %.100s",
                     Py_TYPE(handle)->tp_name);
        return NULL;
    }
    EntryObject *entry = (EntryObject *)handle;
    if (!entry->done) {
        entry->done = 1;
        self->live -= 1;
        self->dead += 1;
        if (self->dead > self->live && self->dead >= COMPACT_THRESHOLD)
            queue_compact(self);
    }
    Py_RETURN_NONE;
}

/* Drop cancelled entries from the top of the heap. */
static void
queue_skim(QueueObject *self)
{
    while (self->size > 0 && self->heap[0]->done) {
        EntryObject *entry = queue_pop_root(self);
        self->dead -= 1;
        Py_DECREF(entry);
    }
}

static PyObject *
Queue_next_time_fs(QueueObject *self, PyObject *Py_UNUSED(ignored))
{
    queue_skim(self);
    if (self->size == 0)
        Py_RETURN_NONE;
    return PyLong_FromLongLong(self->heap[0]->when_fs);
}

static PyObject *
Queue_pop_due(QueueObject *self, PyObject *now_obj)
{
    int overflow = 0;
    long long now_fs = PyLong_AsLongLongAndOverflow(now_obj, &overflow);
    if (overflow != 0 || (now_fs == -1 && PyErr_Occurred())) {
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_OverflowError,
                            "pop_due() time outside the 64-bit range");
        return NULL;
    }
    PyObject *due = PyList_New(0);
    if (due == NULL)
        return NULL;
    for (;;) {
        if (self->size == 0)
            break;
        EntryObject *top = self->heap[0];
        if (top->done) {
            EntryObject *entry = queue_pop_root(self);
            self->dead -= 1;
            Py_DECREF(entry);
            continue;
        }
        if (top->when_fs != now_fs)
            break;
        EntryObject *entry = queue_pop_root(self);
        self->live -= 1;
        /* Mark consumed so a later cancel() of this handle is a no-op. */
        entry->done = 1;
        int failed = PyList_Append(due, entry->payload);
        Py_DECREF(entry);
        if (failed < 0) {
            Py_DECREF(due);
            return NULL;
        }
    }
    return due;
}

static Py_ssize_t
Queue_length(QueueObject *self)
{
    return self->live;
}

static PyObject *
Queue_get_heap_size(QueueObject *self, void *closure)
{
    return PyLong_FromSsize_t(self->size);
}

static int
Queue_traverse(QueueObject *self, visitproc visit, void *arg)
{
    for (Py_ssize_t i = 0; i < self->size; i++)
        Py_VISIT((PyObject *)self->heap[i]);
    return 0;
}

static int
Queue_clear_impl(QueueObject *self)
{
    Py_ssize_t size = self->size;
    self->size = 0;
    self->live = 0;
    self->dead = 0;
    for (Py_ssize_t i = 0; i < size; i++)
        Py_DECREF(self->heap[i]);
    return 0;
}

static void
Queue_dealloc(QueueObject *self)
{
    PyObject_GC_UnTrack((PyObject *)self);
    Queue_clear_impl(self);
    PyMem_Free(self->heap);
    PyObject_GC_Del(self);
}

static PyObject *
Queue_new(PyTypeObject *type, PyObject *args, PyObject *kwds)
{
    QueueObject *self = PyObject_GC_New(QueueObject, type);
    if (self == NULL)
        return NULL;
    self->heap = NULL;
    self->size = 0;
    self->capacity = 0;
    self->live = 0;
    self->dead = 0;
    self->next_seq = 0;
    PyObject_GC_Track((PyObject *)self);
    return (PyObject *)self;
}

static PyMethodDef Queue_methods[] = {
    {"push", (PyCFunction)Queue_push, METH_VARARGS,
     "push(when_fs, payload) -> handle\n"
     "Schedule payload at absolute femtosecond time when_fs."},
    {"cancel", (PyCFunction)Queue_cancel, METH_O,
     "cancel(handle)\nWithdraw a pushed entry (no-op if already fired)."},
    {"next_time_fs", (PyCFunction)Queue_next_time_fs, METH_NOARGS,
     "Absolute time (fs) of the earliest pending entry, or None."},
    {"pop_due", (PyCFunction)Queue_pop_due, METH_O,
     "pop_due(now_fs) -> list\n"
     "Pop and return all payloads whose time is exactly now_fs."},
    {NULL}
};

static PyGetSetDef Queue_getset[] = {
    {"heap_size", (getter)Queue_get_heap_size, NULL,
     "number of heap slots in use, including cancelled entries", NULL},
    {NULL}
};

static PySequenceMethods Queue_as_sequence = {
    .sq_length = (lenfunc)Queue_length,
};

static PyTypeObject Queue_Type = {
    PyVarObject_HEAD_INIT(NULL, 0)
    .tp_name = "repro.sim._nativecore.TimedQueue",
    .tp_basicsize = sizeof(QueueObject),
    .tp_dealloc = (destructor)Queue_dealloc,
    .tp_as_sequence = &Queue_as_sequence,
    .tp_flags = Py_TPFLAGS_DEFAULT | Py_TPFLAGS_HAVE_GC,
    .tp_doc = "C binary-heap TimedQueue, pop-order-identical to the Python "
              "reference queue (repro.sim.event.TimedQueue).",
    .tp_traverse = (traverseproc)Queue_traverse,
    .tp_clear = (inquiry)Queue_clear_impl,
    .tp_methods = Queue_methods,
    .tp_getset = Queue_getset,
    .tp_new = Queue_new,
};

/* ------------------------------------------------------------------ */
/* Module                                                              */
/* ------------------------------------------------------------------ */

static struct PyModuleDef nativecore_module = {
    PyModuleDef_HEAD_INIT,
    .m_name = "repro.sim._nativecore",
    .m_doc = "Compiled event-heap core of the discrete-event kernel.",
    .m_size = -1,
};

PyMODINIT_FUNC
PyInit__nativecore(void)
{
    if (PyType_Ready(&Entry_Type) < 0 || PyType_Ready(&Queue_Type) < 0)
        return NULL;
    PyObject *threshold = PyLong_FromLong(COMPACT_THRESHOLD);
    if (threshold == NULL)
        return NULL;
    if (PyDict_SetItemString(Queue_Type.tp_dict, "COMPACT_THRESHOLD",
                             threshold) < 0) {
        Py_DECREF(threshold);
        return NULL;
    }
    Py_DECREF(threshold);
    PyObject *module = PyModule_Create(&nativecore_module);
    if (module == NULL)
        return NULL;
    Py_INCREF(&Queue_Type);
    if (PyModule_AddObject(module, "TimedQueue", (PyObject *)&Queue_Type) < 0) {
        Py_DECREF(&Queue_Type);
        Py_DECREF(module);
        return NULL;
    }
    Py_INCREF(&Entry_Type);
    if (PyModule_AddObject(module, "TimedEntry", (PyObject *)&Entry_Type) < 0) {
        Py_DECREF(&Entry_Type);
        Py_DECREF(module);
        return NULL;
    }
    if (PyModule_AddStringConstant(module, "CORE_VERSION", "1") < 0) {
        Py_DECREF(module);
        return NULL;
    }
    return module;
}
