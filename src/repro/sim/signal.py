"""Signals: primitive channels with SystemC request/update semantics.

A :class:`Signal` holds a value that is only visible to readers *after* the
update phase of the delta cycle in which it was written.  This gives the
usual hardware-description determinism: every process reading a signal in
the same delta cycle observes the same (old) value regardless of execution
order.

Signals expose three notification events:

* ``changed_event`` — notified whenever the stored value actually changes;
* ``posedge_event`` / ``negedge_event`` — for boolean signals, notified on
  rising / falling transitions (used by clocked processes).
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, TypeVar

from repro.sim.event import Event
from repro.sim.kernel import Kernel
from repro.sim.simtime import SimTime

__all__ = ["Signal"]

T = TypeVar("T")


class Signal(Generic[T]):
    """A value holder with deferred (delta-cycle) update semantics.

    Parameters
    ----------
    kernel:
        The owning kernel.
    name:
        Hierarchical name, used for traces and error messages.
    initial:
        Initial value, visible from time zero.
    """

    __slots__ = (
        "_kernel",
        "name",
        "_current",
        "_next",
        "changed_event",
        "_posedge_event",
        "_negedge_event",
        "_observers",
        "_write_count",
        "_change_count",
    )

    def __init__(self, kernel: Kernel, name: str, initial: T) -> None:
        self._kernel = kernel
        self.name = name
        self._current: T = initial
        self._next: T = initial
        self.changed_event: Event = kernel.event(f"{name}.changed")
        self._posedge_event: Optional[Event] = None
        self._negedge_event: Optional[Event] = None
        self._observers: List[Callable[[SimTime, T], None]] = []
        self._write_count = 0
        self._change_count = 0

    # -- value access -----------------------------------------------------
    def read(self) -> T:
        """Return the current (stable) value."""
        return self._current

    @property
    def value(self) -> T:
        """Alias for :meth:`read`, convenient in expressions."""
        return self._current

    def write(self, value: T) -> None:
        """Schedule ``value`` to become visible after the next update phase."""
        self._write_count += 1
        self._next = value
        if value != self._current:
            self._kernel.request_update(self)

    def write_if_watched(self, value: T) -> None:
        """Write only when someone can observe the change.

        Fast-accuracy-mode helper for pure status mirrors: when no process
        waits on any of the signal's events and no observer/trace is
        attached, the write (and its update-phase visit) is skipped
        entirely.  Readers polling :meth:`read` without waiting would see a
        stale value, so this must only be used for signals whose consumers
        are event-driven.
        """
        changed = self.changed_event
        if changed._waiters or changed._callbacks or self._observers:
            self.write(value)
            return
        posedge = self._posedge_event
        if posedge is not None and (posedge._waiters or posedge._callbacks):
            self.write(value)
            return
        negedge = self._negedge_event
        if negedge is not None and (negedge._waiters or negedge._callbacks):
            self.write(value)

    # -- events -------------------------------------------------------------
    @property
    def posedge_event(self) -> Event:
        """Event notified when a boolean signal rises (False -> True)."""
        if self._posedge_event is None:
            self._posedge_event = self._kernel.event(f"{self.name}.posedge")
        return self._posedge_event

    @property
    def negedge_event(self) -> Event:
        """Event notified when a boolean signal falls (True -> False)."""
        if self._negedge_event is None:
            self._negedge_event = self._kernel.event(f"{self.name}.negedge")
        return self._negedge_event

    def add_observer(self, callback: Callable[[SimTime, T], None]) -> None:
        """Register a callback invoked with ``(time, new_value)`` on change."""
        self._observers.append(callback)

    def remove_observer(self, callback: Callable[[SimTime, T], None]) -> bool:
        """Detach a previously registered observer.

        Returns True when the callback was attached (and is now removed);
        False for an unknown callback.  Detaching matters beyond memory: the
        fast accuracy mode gates several writes on "does anyone observe this
        signal", so a stale observer changes which writes happen at all.
        """
        try:
            self._observers.remove(callback)
        except ValueError:
            return False
        return True

    # -- statistics ---------------------------------------------------------
    @property
    def write_count(self) -> int:
        """Total number of writes (including writes of an unchanged value)."""
        return self._write_count

    @property
    def change_count(self) -> int:
        """Number of times the visible value actually changed."""
        return self._change_count

    # -- kernel interface -----------------------------------------------------
    def update(self) -> None:
        """Apply the pending write; called by the kernel in the update phase.

        Notification events with neither waiters nor callbacks are not
        scheduled at all: the update phase runs after the evaluate phase, so
        the waiter set is final and firing such an event in the next delta
        cycle could not wake anything.  Skipping them keeps waiter-less
        signal traffic (status/debug signals nobody listens to) from forcing
        empty delta cycles through the kernel.
        """
        new = self._next
        old = self._current
        if new == old:
            return
        self._current = new
        self._change_count += 1
        kernel = self._kernel
        changed = self.changed_event
        if changed._waiters or changed._callbacks:
            kernel.schedule_delta(changed)
        posedge = self._posedge_event
        negedge = self._negedge_event
        if posedge is not None or negedge is not None:
            if isinstance(old, bool) or isinstance(new, bool):
                if not old and new and posedge is not None and (posedge._waiters or posedge._callbacks):
                    kernel.schedule_delta(posedge)
                if old and not new and negedge is not None and (negedge._waiters or negedge._callbacks):
                    kernel.schedule_delta(negedge)
        if self._observers:
            now = kernel.now
            for observer in self._observers:
                observer(now, new)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Signal({self.name!r}, value={self._current!r})"
