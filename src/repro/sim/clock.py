"""Clock generator module with a *virtual* (event-free) fast path.

A :class:`Clock` models a fixed-period, fixed-duty-cycle clock.  In this
library most power-management components advance time with explicit timed
waits (task durations, idle periods), so a clock is mainly used to

* provide the "cycle" notion used when reporting simulation speed in
  kilo-cycles per wall-clock second (the paper quotes 35 Kcycle/s), and
* drive cycle-accurate components such as the bus arbiter when the user
  wants that level of detail.

By default the clock is **virtual**: no toggling process runs and no signal
edges are scheduled.  :attr:`cycle_count` and :meth:`cycles_elapsed` are
computed analytically from the kernel's current time and the period, so a
model with no cycle-sensitive process pays *zero* kernel work per simulated
cycle.  The moment a consumer actually needs edges — by reading
:attr:`Clock.out` (or its ``posedge_event``/``negedge_event``), or by
constructing the clock with ``cycle_accurate=True`` — the output signal and
the toggling thread are materialised and behave exactly like the classic
SystemC clock generator.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, SimulationError
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.signal import Signal
from repro.sim.simtime import SimTime

__all__ = ["Clock"]


class Clock(Module):
    """A clock with a boolean output signal, materialised only on demand.

    Parameters
    ----------
    kernel:
        Owning kernel.
    name:
        Instance name.
    period:
        Clock period (must be positive).
    duty_cycle:
        Fraction of the period spent high, in (0, 1).  Defaults to 0.5.
    start_high:
        Whether the first phase is the high phase.
    cycle_accurate:
        Materialise the output signal and toggling thread immediately
        instead of on first use of :attr:`out`.  Use this to force
        cycle-accurate edges even when no process subscribes before the
        simulation starts.
    parent:
        Optional parent module.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        period: SimTime,
        duty_cycle: float = 0.5,
        start_high: bool = True,
        cycle_accurate: bool = False,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if period.is_zero:
            raise ConfigurationError("clock period must be positive")
        if not 0.0 < duty_cycle < 1.0:
            raise ConfigurationError(f"duty cycle must be in (0, 1), got {duty_cycle}")
        self.period = period
        self.duty_cycle = duty_cycle
        self.start_high = start_high
        # The high phase rounds to the femtosecond grid; the low phase is
        # derived invariantly so high + low == period holds *exactly* and the
        # edge schedule can never drift against the analytic cycle count.
        self._period_fs = int(period)
        self._high_time = period * duty_cycle
        self._low_time = period - self._high_time
        self._start_fs = kernel.now_fs
        self._cycles = 0
        self._out: Optional[Signal[bool]] = None
        if cycle_accurate:
            self.materialize()

    # ------------------------------------------------------------------
    # Virtual (analytic) cycle accounting
    # ------------------------------------------------------------------
    @property
    def frequency_hz(self) -> float:
        """Clock frequency in hertz."""
        return 1.0 / self.period.seconds

    @property
    def cycle_count(self) -> int:
        """Number of full periods elapsed since the clock was created.

        Computed analytically from the kernel time — identical for virtual
        and materialised clocks, and free of per-cycle simulation work.
        """
        return (self.kernel.now_fs - self._start_fs) // self._period_fs

    def cycles_elapsed(self, duration: SimTime) -> float:
        """Number of clock periods contained in ``duration``."""
        return duration / self.period

    def next_posedge_fs(self, now_fs: int) -> int:
        """Absolute time (fs) of the first rising edge at or after ``now_fs``.

        Pure arithmetic on the analytic edge schedule — valid for virtual
        and materialised clocks alike, and exactly the instants at which a
        materialised clock's output would rise: ``start + k*period`` for
        ``k >= 1`` when the clock starts high, ``start + low + k*period``
        for ``k >= 0`` otherwise.  Cycle-accurate consumers (the bus
        arbiter) use this to jump straight to the next interesting edge
        instead of waking on every cycle.
        """
        period = self._period_fs
        base = self._start_fs + (period if self.start_high else int(self._low_time))
        if now_fs <= base:
            return base
        return base + -(-(now_fs - base) // period) * period

    @property
    def is_materialized(self) -> bool:
        """True once the output signal and toggle thread exist."""
        return self._out is not None

    # ------------------------------------------------------------------
    # Materialised (cycle-accurate) mode
    # ------------------------------------------------------------------
    @property
    def out(self) -> Signal[bool]:
        """The boolean output signal; materialises the clock on first use."""
        if self._out is None:
            self.materialize()
        return self._out

    @property
    def posedge_event(self):
        """Rising-edge event of :attr:`out`; materialises the clock."""
        return self.out.posedge_event

    @property
    def negedge_event(self):
        """Falling-edge event of :attr:`out`; materialises the clock."""
        return self.out.negedge_event

    def materialize(self) -> Signal[bool]:
        """Create the output signal and toggling thread (idempotent).

        Must happen while the kernel still sits at the clock's creation time
        (normally: before the simulation starts); materialising later would
        silently skip the edges of the elapsed cycles, so it is rejected.
        """
        if self._out is None:
            if self.kernel.now_fs != self._start_fs:
                raise SimulationError(
                    f"clock {self.name!r} must be materialised at its creation time; "
                    "construct it with cycle_accurate=True to force edges from the start"
                )
            self._out = self.signal("out", bool(self.start_high))
            self.add_thread(self._toggle, name="toggle")
        return self._out

    def _toggle(self):
        high_first = self.start_high
        out = self._out
        high_time = self._high_time
        low_time = self._low_time
        while True:
            if high_first:
                yield high_time
                out.write(False)
                yield low_time
                out.write(True)
            else:
                yield low_time
                out.write(True)
                yield high_time
                out.write(False)
            self._cycles += 1
            # Drift guard: the edge schedule must agree with the analytic
            # cycle count (high + low == period exactly, by construction).
            assert self._cycles == (self.kernel.now_fs - self._start_fs) // self._period_fs, (
                f"clock {self.name!r} drifted: {self._cycles} toggled cycles vs "
                f"{(self.kernel.now_fs - self._start_fs) // self._period_fs} analytic"
            )
