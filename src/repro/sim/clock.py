"""Clock generator module.

A :class:`Clock` drives a boolean signal with a fixed period and duty cycle.
In this library most power-management components advance time with explicit
timed waits (task durations, idle periods), so a clock is mainly used to

* provide the "cycle" notion used when reporting simulation speed in
  kilo-cycles per wall-clock second (the paper quotes 35 Kcycle/s), and
* drive cycle-accurate components such as the bus arbiter when the user
  wants that level of detail.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.sim.kernel import Kernel
from repro.sim.module import Module
from repro.sim.simtime import SimTime

__all__ = ["Clock"]


class Clock(Module):
    """A free-running clock with a boolean output signal.

    Parameters
    ----------
    kernel:
        Owning kernel.
    name:
        Instance name.
    period:
        Clock period (must be positive).
    duty_cycle:
        Fraction of the period spent high, in (0, 1).  Defaults to 0.5.
    start_high:
        Whether the first phase is the high phase.
    parent:
        Optional parent module.
    """

    def __init__(
        self,
        kernel: Kernel,
        name: str,
        period: SimTime,
        duty_cycle: float = 0.5,
        start_high: bool = True,
        parent: Optional[Module] = None,
    ) -> None:
        super().__init__(kernel, name, parent)
        if period.is_zero:
            raise ConfigurationError("clock period must be positive")
        if not 0.0 < duty_cycle < 1.0:
            raise ConfigurationError(f"duty cycle must be in (0, 1), got {duty_cycle}")
        self.period = period
        self.duty_cycle = duty_cycle
        self.start_high = start_high
        self.out = self.signal("out", bool(start_high))
        self._high_time = period * duty_cycle
        self._low_time = period - self._high_time
        self._cycles = 0
        self.add_thread(self._toggle, name="toggle")

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in hertz."""
        return 1.0 / self.period.seconds

    @property
    def cycle_count(self) -> int:
        """Number of full periods generated so far."""
        return self._cycles

    def cycles_elapsed(self, duration: SimTime) -> float:
        """Number of clock periods contained in ``duration``."""
        return duration / self.period

    def _toggle(self):
        high_first = self.start_high
        while True:
            if high_first:
                yield self._high_time
                self.out.write(False)
                yield self._low_time
                self.out.write(True)
            else:
                yield self._low_time
                self.out.write(True)
                yield self._high_time
                self.out.write(False)
            self._cycles += 1
