"""Hierarchical modules: the structural building blocks of a model.

A :class:`Module` groups processes, signals and ports under a hierarchical
name, exactly like a SystemC ``sc_module``.  Subclasses describe behaviour
by registering processes in their constructor::

    class Blinker(Module):
        def __init__(self, kernel, name, parent=None):
            super().__init__(kernel, name, parent)
            self.led = self.signal("led", False)
            self.add_thread(self._blink)

        def _blink(self):
            while True:
                self.led.write(not self.led.read())
                yield ns(10)

Modules track their children so the :class:`~repro.sim.simulator.Simulator`
can walk the hierarchy during elaboration (resolving ports, calling
``end_of_elaboration`` hooks) and when printing the design tree.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, TypeVar

from repro.errors import ElaborationError
from repro.sim.event import Event
from repro.sim.kernel import Kernel
from repro.sim.port import Port
from repro.sim.process import MethodProcess, Process, ThreadProcess
from repro.sim.signal import Signal

__all__ = ["Module"]

T = TypeVar("T")


class Module:
    """Base class for hierarchical simulation modules.

    Parameters
    ----------
    kernel:
        The kernel that will schedule this module's processes.
    name:
        Local (non-hierarchical) instance name.  Must be unique among the
        siblings under the same parent.
    parent:
        Optional enclosing module.  Top-level modules have ``parent=None``
        and are registered with the simulator instead.
    """

    def __init__(self, kernel: Kernel, name: str, parent: Optional["Module"] = None) -> None:
        if not name:
            raise ElaborationError("module name must be a non-empty string")
        self.kernel = kernel
        self.basename = name
        self.parent = parent
        # The hierarchy is fixed at construction time, so the full name can
        # be computed once instead of walking the parent chain on every read.
        self._full_name = name if parent is None else f"{parent.name}.{name}"
        self._children: Dict[str, "Module"] = {}
        self._signals: List[Signal] = []
        self._ports: List[Port] = []
        self._processes: List[Process] = []
        self._elaborated = False
        if parent is not None:
            parent._add_child(self)

    # -- naming ----------------------------------------------------------
    @property
    def name(self) -> str:
        """Full hierarchical name (dot-separated)."""
        return self._full_name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}({self.name!r})"

    # -- hierarchy ---------------------------------------------------------
    def _add_child(self, child: "Module") -> None:
        if child.basename in self._children:
            raise ElaborationError(
                f"module {self.name!r} already has a child named {child.basename!r}"
            )
        self._children[child.basename] = child

    @property
    def children(self) -> Sequence["Module"]:
        """Direct sub-modules, in creation order."""
        return list(self._children.values())

    def walk(self) -> Iterator["Module"]:
        """Yield this module and every descendant, depth-first."""
        yield self
        for child in self._children.values():
            yield from child.walk()

    def find(self, path: str) -> "Module":
        """Find a descendant by dot-separated relative path."""
        module: Module = self
        for part in path.split("."):
            try:
                module = module._children[part]
            except KeyError:
                raise ElaborationError(f"{self.name!r} has no descendant {path!r}") from None
        return module

    # -- construction helpers ------------------------------------------------
    def signal(self, name: str, initial: T) -> Signal[T]:
        """Create a signal named relative to this module."""
        sig: Signal[T] = Signal(self.kernel, f"{self.name}.{name}", initial)
        self._signals.append(sig)
        return sig

    def event(self, name: str) -> Event:
        """Create an event named relative to this module."""
        return self.kernel.event(f"{self.name}.{name}")

    def register_port(self, port: Port) -> Port:
        """Track a port so elaboration can verify it is bound."""
        port.name = f"{self.name}.{port.name}"
        self._ports.append(port)
        return port

    def add_thread(self, func: Callable, name: Optional[str] = None) -> ThreadProcess:
        """Register a generator function as a thread process."""
        process_name = f"{self.name}.{name or func.__name__}"
        process = self.kernel.create_thread(func, process_name)
        self._processes.append(process)
        return process

    def add_method(
        self,
        func: Callable[[], None],
        sensitivity: Iterable[Event],
        name: Optional[str] = None,
        dont_initialize: bool = False,
    ) -> MethodProcess:
        """Register a callable as a method process with static sensitivity."""
        process_name = f"{self.name}.{name or func.__name__}"
        process = self.kernel.create_method(
            func, sensitivity, process_name, dont_initialize=dont_initialize
        )
        self._processes.append(process)
        return process

    # -- elaboration hooks -----------------------------------------------------
    def before_end_of_elaboration(self) -> None:
        """Hook called on every module before ports are resolved."""

    def end_of_elaboration(self) -> None:
        """Hook called on every module after ports are resolved."""

    def elaborate(self) -> None:
        """Resolve this module's ports (called by the simulator)."""
        if self._elaborated:
            return
        self.before_end_of_elaboration()
        for port in self._ports:
            port.resolve()
        self._elaborated = True
        self.end_of_elaboration()

    # -- reporting ---------------------------------------------------------------
    def design_tree(self, indent: int = 0) -> str:
        """Return a printable tree of this module and its descendants."""
        lines = [" " * indent + f"{self.basename} ({type(self).__name__})"]
        for child in self._children.values():
            lines.append(child.design_tree(indent + 2))
        return "\n".join(lines)

    @property
    def signals(self) -> Sequence[Signal]:
        """Signals created by this module (not including children's)."""
        return list(self._signals)

    @property
    def processes(self) -> Sequence[Process]:
        """Processes registered by this module."""
        return list(self._processes)
