"""Events and the timed notification queue of the discrete-event kernel.

An :class:`Event` is the fundamental synchronisation primitive, modelled on
SystemC's ``sc_event``:

* processes *wait* on events (dynamically, by yielding them, or statically,
  through a method process' sensitivity list);
* anyone may *notify* an event, either immediately (within the current
  evaluation phase), after a delta cycle, or after a simulated-time delay.

The kernel owns a :class:`TimedQueue` of pending timed notifications, ordered
by (time, insertion sequence) so that simultaneous notifications preserve
insertion order, which keeps simulations deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.errors import SchedulingError
from repro.sim.simtime import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process

__all__ = ["Event", "TimedQueue"]


class Event:
    """A notifiable synchronisation point.

    Parameters
    ----------
    kernel:
        The kernel this event belongs to.  Events can only wake processes
        registered with the same kernel.
    name:
        Optional hierarchical name used in traces and error messages.
    """

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self._kernel = kernel
        self.name = name or f"event_{id(self):x}"
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[], None]] = []
        self._pending_timed: bool = False

    # -- introspection --------------------------------------------------
    @property
    def kernel(self) -> "Kernel":
        """The kernel that schedules this event."""
        return self._kernel

    @property
    def waiter_count(self) -> int:
        """Number of processes currently waiting on this event."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name!r}, waiters={len(self._waiters)})"

    # -- registration (used by the kernel / processes) -------------------
    def add_waiter(self, process: "Process") -> None:
        """Register ``process`` to be woken on the next notification."""
        if process not in self._waiters:
            self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        """Remove ``process`` from the waiter list if present."""
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def add_callback(self, callback: Callable[[], None]) -> None:
        """Register a permanent callback invoked at every notification.

        Callbacks are used internally for static sensitivity of method
        processes and for tracing; unlike waiters they are not cleared after
        a notification fires.
        """
        self._callbacks.append(callback)

    # -- notification ----------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``notify()`` with no argument is an *immediate* notification: waiting
        processes become runnable in the current evaluation phase.
        ``notify(ZERO_TIME)`` is a *delta* notification and
        ``notify(delay)`` with a non-zero delay is a *timed* notification.
        """
        if delay is None:
            self._kernel.schedule_immediate(self)
        elif delay.is_zero:
            self._kernel.schedule_delta(self)
        else:
            self._kernel.schedule_timed(self, delay)

    def notify_delta(self) -> None:
        """Notify after one delta cycle (same simulated time)."""
        self._kernel.schedule_delta(self)

    def notify_after(self, delay: SimTime) -> None:
        """Notify after ``delay`` of simulated time."""
        self._kernel.schedule_timed(self, delay)

    # -- firing (kernel only) ---------------------------------------------
    def fire(self) -> List["Process"]:
        """Wake all waiters and run callbacks; return the processes woken.

        This is called by the kernel when the notification matures.  The
        waiter list is cleared: dynamic waits are one-shot, as in SystemC.
        """
        woken, self._waiters = self._waiters, []
        for callback in self._callbacks:
            callback()
        return woken


class TimedQueue:
    """Priority queue of timed notifications, ordered by absolute time.

    Entries are ``(absolute_time, sequence, payload)`` where ``payload`` is
    either an :class:`Event` to fire or a :class:`~repro.sim.process.Process`
    to resume directly (used for ``yield some_duration`` timeouts).  Cancelled
    entries are flagged lazily and skipped on pop.
    """

    def __init__(self) -> None:
        self._heap: list = []
        self._sequence = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def push(self, when: SimTime, payload) -> dict:
        """Schedule ``payload`` at absolute time ``when``; returns a handle.

        The returned handle is a mutable mapping with a ``"cancelled"`` key
        that callers may set to ``True`` to cancel the notification.
        """
        entry = {"time": when, "payload": payload, "cancelled": False}
        heapq.heappush(self._heap, (when.femtoseconds, next(self._sequence), entry))
        self._live += 1
        return entry

    def cancel(self, entry: dict) -> None:
        """Cancel a previously pushed entry (no-op if already fired)."""
        if not entry["cancelled"]:
            entry["cancelled"] = True
            self._live -= 1

    def next_time(self) -> Optional[SimTime]:
        """Absolute time of the earliest pending entry, or ``None`` if empty."""
        self._drop_cancelled()
        if not self._heap:
            return None
        return SimTime(self._heap[0][0])

    def pop_due(self, now: SimTime) -> list:
        """Pop and return all payloads whose time is exactly ``now``."""
        due = []
        self._drop_cancelled()
        while self._heap and self._heap[0][0] == now.femtoseconds:
            _, _, entry = heapq.heappop(self._heap)
            if entry["cancelled"]:
                continue
            self._live -= 1
            # Mark as consumed so a later cancel() of this handle is a no-op.
            entry["cancelled"] = True
            if entry["time"] != now:  # pragma: no cover - defensive
                raise SchedulingError("timed queue popped an entry at the wrong time")
            due.append(entry["payload"])
            self._drop_cancelled()
        return due

    def _drop_cancelled(self) -> None:
        while self._heap and self._heap[0][2]["cancelled"]:
            heapq.heappop(self._heap)


def _zero() -> SimTime:  # pragma: no cover - kept for API symmetry
    return ZERO_TIME
