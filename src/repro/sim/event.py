"""Events and the timed notification queue of the discrete-event kernel.

An :class:`Event` is the fundamental synchronisation primitive, modelled on
SystemC's ``sc_event``:

* processes *wait* on events (dynamically, by yielding them, or statically,
  through a method process' sensitivity list);
* anyone may *notify* an event, either immediately (within the current
  evaluation phase), after a delta cycle, or after a simulated-time delay.

The kernel owns a :class:`TimedQueue` of pending timed notifications, ordered
by (time, insertion sequence) so that simultaneous notifications preserve
insertion order, which keeps simulations deterministic.  The queue works on
raw integer femtoseconds — the kernel converts :class:`~repro.sim.simtime.SimTime`
values once at the scheduling boundary and everything below runs on plain
``int`` comparisons.
"""

from __future__ import annotations

import heapq
from typing import TYPE_CHECKING, Callable, List, Optional

from repro.sim.simtime import SimTime, ZERO_TIME

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.sim.kernel import Kernel
    from repro.sim.process import Process

__all__ = ["Event", "TimedQueue"]


class Event:
    """A notifiable synchronisation point.

    Parameters
    ----------
    kernel:
        The kernel this event belongs to.  Events can only wake processes
        registered with the same kernel.
    name:
        Optional hierarchical name used in traces and error messages.
    """

    __slots__ = ("_kernel", "name", "_waiters", "_callbacks")

    def __init__(self, kernel: "Kernel", name: str = "") -> None:
        self._kernel = kernel
        self.name = name or f"event_{id(self):x}"
        self._waiters: List["Process"] = []
        self._callbacks: List[Callable[[], None]] = []

    # -- introspection --------------------------------------------------
    @property
    def kernel(self) -> "Kernel":
        """The kernel that schedules this event."""
        return self._kernel

    @property
    def waiter_count(self) -> int:
        """Number of processes currently waiting on this event."""
        return len(self._waiters)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Event({self.name!r}, waiters={len(self._waiters)})"

    # -- registration (used by the kernel / processes) -------------------
    def add_waiter(self, process: "Process") -> None:
        """Register ``process`` to be woken on the next notification."""
        if process not in self._waiters:
            self._waiters.append(process)

    def remove_waiter(self, process: "Process") -> None:
        """Remove ``process`` from the waiter list if present."""
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def add_callback(self, callback: Callable[[], None]) -> None:
        """Register a permanent callback invoked at every notification.

        Callbacks are used internally for static sensitivity of method
        processes and for tracing; unlike waiters they are not cleared after
        a notification fires.
        """
        self._callbacks.append(callback)

    # -- notification ----------------------------------------------------
    def notify(self, delay: Optional[SimTime] = None) -> None:
        """Notify the event.

        ``notify()`` with no argument is an *immediate* notification: waiting
        processes become runnable in the current evaluation phase.
        ``notify(ZERO_TIME)`` is a *delta* notification and
        ``notify(delay)`` with a non-zero delay is a *timed* notification.
        """
        if delay is None:
            self._kernel.schedule_immediate(self)
        elif delay.is_zero:
            self._kernel.schedule_delta(self)
        else:
            self._kernel.schedule_timed(self, delay)

    def notify_delta(self) -> None:
        """Notify after one delta cycle (same simulated time)."""
        self._kernel.schedule_delta(self)

    def notify_after(self, delay: SimTime) -> None:
        """Notify after ``delay`` of simulated time."""
        self._kernel.schedule_timed(self, delay)

    # -- firing (kernel only) ---------------------------------------------
    def fire(self) -> List["Process"]:
        """Wake all waiters and run callbacks; return the processes woken.

        This is called by the kernel when the notification matures.  The
        waiter list is cleared: dynamic waits are one-shot, as in SystemC.
        """
        woken, self._waiters = self._waiters, []
        for callback in self._callbacks:
            callback()
        return woken


class TimedQueue:
    """Priority queue of timed notifications, ordered by absolute time.

    Heap items are plain lists ``[time_fs, sequence, payload, cancelled]``
    which double as the cancellation handles — one allocation per
    notification, compared lexicographically at C speed (the unique
    ``sequence`` guarantees the ``payload`` element is never compared).
    ``payload`` is either an :class:`Event` to fire or a
    :class:`~repro.sim.process.Process` to resume directly (used for
    ``yield some_duration`` timeouts).  Times are raw integer femtoseconds.

    Cancelled entries are flagged lazily and skipped on pop; to keep long
    runs with many cancellations from leaking heap slots, the heap is
    compacted whenever dead entries outnumber the live ones.
    """

    #: minimum number of dead entries before a compaction is considered
    COMPACT_THRESHOLD = 64

    def __init__(self) -> None:
        self._heap: list = []
        self._next_sequence = 0
        self._live = 0
        self._dead = 0  # cancelled entries still occupying heap slots

    def __len__(self) -> int:
        return self._live

    @property
    def heap_size(self) -> int:
        """Number of heap slots in use, including cancelled entries."""
        return len(self._heap)

    def push(self, when_fs: int, payload) -> list:
        """Schedule ``payload`` at absolute time ``when_fs``; returns a handle.

        The returned handle may be passed to :meth:`cancel` to withdraw the
        notification.
        """
        seq = self._next_sequence
        self._next_sequence = seq + 1
        entry = [when_fs, seq, payload, False]
        heapq.heappush(self._heap, entry)
        self._live += 1
        return entry

    def cancel(self, entry: list) -> None:
        """Cancel a previously pushed entry (no-op if already fired)."""
        if not entry[3]:
            entry[3] = True
            self._live -= 1
            self._dead += 1
            if self._dead > self._live and self._dead >= self.COMPACT_THRESHOLD:
                self._compact()

    def next_time_fs(self) -> Optional[int]:
        """Absolute femtosecond time of the earliest pending entry, if any."""
        heap = self._heap
        while heap and heap[0][3]:
            heapq.heappop(heap)
            self._dead -= 1
        if not heap:
            return None
        return heap[0][0]

    def next_time(self) -> Optional[SimTime]:
        """Absolute time of the earliest pending entry, or ``None`` if empty."""
        when_fs = self.next_time_fs()
        return None if when_fs is None else SimTime(when_fs)

    def pop_due(self, now_fs: int) -> list:
        """Pop and return all payloads whose time is exactly ``now_fs``."""
        due = []
        heap = self._heap
        pop = heapq.heappop
        while heap:
            entry = heap[0]
            if entry[3]:
                pop(heap)
                self._dead -= 1
                continue
            if entry[0] != now_fs:
                break
            pop(heap)
            self._live -= 1
            # Mark as consumed so a later cancel() of this handle is a no-op.
            entry[3] = True
            due.append(entry[2])
        return due

    def _compact(self) -> None:
        """Drop cancelled entries wholesale and rebuild the heap.

        Heap keys ``(time_fs, sequence)`` are unique, so re-heapifying the
        surviving items reproduces exactly the original pop order.
        """
        self._heap = [entry for entry in self._heap if not entry[3]]
        heapq.heapify(self._heap)
        self._dead = 0


def _zero() -> SimTime:  # pragma: no cover - kept for API symmetry
    return ZERO_TIME
