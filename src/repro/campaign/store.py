"""Content-addressed result store for campaigns.

A campaign directory looks like::

    <campaign-dir>/
        campaign.json           # the normalized spec that produced the grid
        records/
            <job_id>.json       # one result record per executed job
        traces/
            <job_id>.<ext>      # per-job event traces (campaign run --trace)

Each record file is named after :attr:`~repro.campaign.spec.JobSpec.job_id`
(the hash of the job description), which makes the store *content-addressed*:
re-running a campaign looks up every job by hash and only executes the ones
with no stored ``ok`` record — that is all ``--resume`` is.  Records are
written atomically (temp file + ``os.replace``) so an interrupted campaign
never leaves a truncated record behind.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, Iterator, List, Mapping, Optional, Set, Union

from repro.errors import CampaignError

__all__ = ["ResultStore"]

_MANIFEST = "campaign.json"
_RECORDS = "records"
_BASELINES = "baselines"
_TRACES = "traces"


class ResultStore:
    """Per-campaign persistence: one JSON record per job, keyed by job hash.

    Baseline runs are stored separately under ``baselines/<key>.json`` keyed
    by :attr:`~repro.campaign.spec.JobSpec.baseline_key` — the hash of
    (scenario, baseline setup, seed, accuracy mode) — so every job of a grid
    cell shares one baseline simulation instead of re-running it per job.
    """

    def __init__(self, root: Union[str, os.PathLike]) -> None:
        self.root = Path(root)
        self.records_dir = self.root / _RECORDS
        self.baselines_dir = self.root / _BASELINES
        self.traces_dir = self.root / _TRACES
        # The directories are created lazily by the write paths, so read-only
        # commands (status/report) on a mistyped path have no side effects.

    # -- manifest -------------------------------------------------------
    @property
    def manifest_path(self) -> Path:
        """Location of the normalized campaign spec."""
        return self.root / _MANIFEST

    def write_manifest(self, spec_dict: Mapping[str, Any]) -> None:
        """Persist the normalized campaign spec next to the records."""
        self.root.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.manifest_path, dict(spec_dict))

    def read_manifest(self) -> Dict[str, Any]:
        """Load the campaign spec stored by a previous run."""
        if not self.manifest_path.is_file():
            raise CampaignError(
                f"no campaign manifest in {self.root} (run the campaign first)"
            )
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except json.JSONDecodeError as error:
            raise CampaignError(
                f"corrupt campaign manifest {self.manifest_path}: {error}"
            ) from None

    # -- records --------------------------------------------------------
    def put(self, record: Mapping[str, Any]) -> None:
        """Store one result record (overwrites any previous record of the job)."""
        job_id = record.get("job_id")
        if not isinstance(job_id, str) or not job_id:
            raise CampaignError("result records need a non-empty 'job_id'")
        self.records_dir.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.records_dir / f"{job_id}.json", dict(record))

    def get(self, job_id: str) -> Optional[Dict[str, Any]]:
        """Load the record of ``job_id``, or ``None`` when absent/corrupt."""
        path = self.records_dir / f"{job_id}.json"
        if not path.is_file():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None

    def __contains__(self, job_id: str) -> bool:
        return (self.records_dir / f"{job_id}.json").is_file()

    def __len__(self) -> int:
        return sum(1 for _ in self.records_dir.glob("*.json"))

    def job_ids(self, status: Optional[str] = None) -> Set[str]:
        """Stored job ids, optionally restricted to one record status."""
        if status is None:
            return {path.stem for path in self.records_dir.glob("*.json")}
        return {record["job_id"] for record in self.records(status=status)}

    def records(self, status: Optional[str] = None) -> List[Dict[str, Any]]:
        """All stored records (sorted by job id for deterministic output)."""
        result = []
        for record in self._iter_records():
            if status is None or record.get("status") == status:
                result.append(record)
        result.sort(key=lambda record: record.get("job_id", ""))
        return result

    def _iter_records(self) -> Iterator[Dict[str, Any]]:
        for path in sorted(self.records_dir.glob("*.json")):
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    record = json.load(handle)
            except (OSError, json.JSONDecodeError):
                continue  # a half-written record counts as missing
            if isinstance(record, dict):
                yield record

    # -- shared baselines ------------------------------------------------
    def put_baseline(self, key: str, record: Mapping[str, Any]) -> None:
        """Store the figures of one shared baseline run."""
        if not isinstance(key, str) or not key:
            raise CampaignError("baseline records need a non-empty key")
        self.baselines_dir.mkdir(parents=True, exist_ok=True)
        self._write_atomic(self.baselines_dir / f"{key}.json", dict(record))

    def get_baseline(self, key: str) -> Optional[Dict[str, Any]]:
        """Load a shared baseline record, or ``None`` when absent/corrupt."""
        path = self.baselines_dir / f"{key}.json"
        if not path.is_file():
            return None
        try:
            with open(path, "r", encoding="utf-8") as handle:
                record = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        return record if isinstance(record, dict) else None

    def baseline_keys(self) -> Set[str]:
        """Keys of all stored shared baselines."""
        if not self.baselines_dir.is_dir():
            return set()
        return {path.stem for path in self.baselines_dir.glob("*.json")}

    # -- internals ------------------------------------------------------
    @staticmethod
    def _write_atomic(path: Path, payload: Dict[str, Any]) -> None:
        tmp = path.with_suffix(path.suffix + f".tmp{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(tmp, path)
