"""Parallel experiment campaigns: declarative grids, a result store, resume.

The campaign layer turns the single-shot
:func:`~repro.experiments.runner.run_comparison` into a scalable evaluation
engine:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` describes a grid of
  scenarios x DPM setups x seeds x overrides, loadable from JSON/TOML files
  or built in Python; the grid expands to hashable :class:`JobSpec` cells.
* :mod:`repro.campaign.executor` — :func:`run_campaign` fans the grid out
  over a ``multiprocessing`` pool with deterministic per-job seeds, per-job
  timeouts and graceful failure capture.
* :mod:`repro.campaign.store` — :class:`ResultStore`, a content-addressed
  JSON store keyed by the job hash; caching plus ``--resume``.
* :mod:`repro.campaign.aggregate` — reduces stored records back into
  :class:`~repro.analysis.metrics.ScenarioMetrics` rows and renders the
  campaign report/status.

The ``repro-dpm campaign`` CLI subcommand (run/status/report) is the
command-line face of this package.
"""

from repro.campaign.aggregate import (
    aggregate_records,
    campaign_status,
    record_metrics,
    render_campaign_report,
    render_status,
)
from repro.campaign.executor import (
    CampaignSummary,
    execute_baseline,
    execute_job,
    preflight_campaign,
    run_campaign,
)
from repro.campaign.spec import (
    CampaignSpec,
    JobSpec,
    PAPER_SCENARIO_DEFS,
    build_scenario,
    build_setup,
    canonical_json,
    job_hash,
    normalize_scenario,
    normalize_setup,
)
from repro.campaign.store import ResultStore

__all__ = [
    "CampaignSpec",
    "CampaignSummary",
    "JobSpec",
    "PAPER_SCENARIO_DEFS",
    "ResultStore",
    "aggregate_records",
    "build_scenario",
    "build_setup",
    "campaign_status",
    "canonical_json",
    "execute_baseline",
    "execute_job",
    "job_hash",
    "normalize_scenario",
    "normalize_setup",
    "preflight_campaign",
    "record_metrics",
    "render_campaign_report",
    "render_status",
    "run_campaign",
]
