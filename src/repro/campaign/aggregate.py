"""Reduce stored campaign records back into the analysis layer.

The executor persists plain dictionaries; this module turns them back into
:class:`~repro.analysis.metrics.ScenarioMetrics` rows so every existing
renderer (:mod:`repro.analysis.report`, :mod:`repro.analysis.export`)
works on campaign output unchanged:

* :func:`record_metrics` — one stored record → one ``ScenarioMetrics``;
* :func:`aggregate_records` — mean over seeds/overrides, grouped by
  ``(scenario, setup)``, i.e. one row per grid cell family;
* :func:`render_campaign_report` — the text report printed by
  ``repro-dpm campaign report``;
* :func:`campaign_status` — done/failed/missing counts for
  ``repro-dpm campaign status``.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.metrics import ScenarioMetrics
from repro.analysis.report import format_table
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import ResultStore
from repro.errors import CampaignError

__all__ = [
    "record_metrics",
    "aggregate_records",
    "render_campaign_report",
    "campaign_status",
    "render_status",
]

_MEANED_FIELDS = (
    "energy_saving_pct",
    "temperature_reduction_pct",
    "average_delay_overhead_pct",
    "dpm_energy_j",
    "baseline_energy_j",
    "dpm_average_rise_c",
    "baseline_average_rise_c",
    "simulated_time_s",
    "bus_occupancy_pct",
    "bus_average_wait_us",
)


def record_metrics(record: Mapping[str, Any]) -> ScenarioMetrics:
    """Rebuild the :class:`ScenarioMetrics` of one stored ``ok`` record."""
    if record.get("status") != "ok":
        raise CampaignError(
            f"record {record.get('job_id', '?')} has status "
            f"{record.get('status')!r}, not 'ok'"
        )
    metrics = dict(record["metrics"])
    return ScenarioMetrics(
        scenario=metrics.pop("scenario", record.get("scenario", "?")),
        energy_saving_pct=metrics.pop("energy_saving_pct"),
        temperature_reduction_pct=metrics.pop("temperature_reduction_pct"),
        average_delay_overhead_pct=metrics.pop("average_delay_overhead_pct"),
        dpm_energy_j=metrics.pop("dpm_energy_j", 0.0),
        baseline_energy_j=metrics.pop("baseline_energy_j", 0.0),
        dpm_average_rise_c=metrics.pop("dpm_average_rise_c", 0.0),
        baseline_average_rise_c=metrics.pop("baseline_average_rise_c", 0.0),
        tasks_executed=int(metrics.pop("tasks_executed", 0)),
        simulated_time_s=metrics.pop("simulated_time_s", 0.0),
        wall_clock_s=metrics.pop("wall_clock_s", 0.0),
        kilocycles_per_second=metrics.pop("kilocycles_per_second", 0.0),
        bus_occupancy_pct=metrics.pop("bus_occupancy_pct", 0.0),
        bus_transfer_count=int(metrics.pop("bus_transfer_count", 0)),
        bus_words_transferred=int(metrics.pop("bus_words_transferred", 0)),
        bus_average_wait_us=metrics.pop("bus_average_wait_us", 0.0),
        bus_cancelled_count=int(metrics.pop("bus_cancelled_count", 0)),
        per_ip={name: dict(stats) for name, stats in record.get("per_ip", {}).items()},
        extra={key: value for key, value in metrics.items() if isinstance(value, (int, float))},
    )


def aggregate_records(records: Sequence[Mapping[str, Any]]) -> List[ScenarioMetrics]:
    """Mean-aggregate ``ok`` records into one row per ``(scenario, setup)``.

    The row is labelled ``"<scenario>/<setup>"`` and its ``extra`` carries the
    number of jobs averaged, so reports stay honest about sample sizes.
    """
    groups: Dict[Tuple[str, str], List[ScenarioMetrics]] = {}
    order: List[Tuple[str, str]] = []
    for record in records:
        if record.get("status") != "ok":
            continue
        key = (str(record.get("scenario", "?")), str(record.get("setup", "?")))
        if key not in groups:
            groups[key] = []
            order.append(key)
        groups[key].append(record_metrics(record))
    order.sort()
    rows: List[ScenarioMetrics] = []
    for key in order:
        members = groups[key]
        count = len(members)
        means = {
            name: sum(getattr(member, name) for member in members) / count
            for name in _MEANED_FIELDS
        }
        rows.append(
            ScenarioMetrics(
                scenario=f"{key[0]}/{key[1]}",
                energy_saving_pct=means["energy_saving_pct"],
                temperature_reduction_pct=means["temperature_reduction_pct"],
                average_delay_overhead_pct=means["average_delay_overhead_pct"],
                dpm_energy_j=means["dpm_energy_j"],
                baseline_energy_j=means["baseline_energy_j"],
                dpm_average_rise_c=means["dpm_average_rise_c"],
                baseline_average_rise_c=means["baseline_average_rise_c"],
                tasks_executed=sum(member.tasks_executed for member in members),
                simulated_time_s=means["simulated_time_s"],
                bus_occupancy_pct=means["bus_occupancy_pct"],
                bus_average_wait_us=means["bus_average_wait_us"],
                bus_transfer_count=sum(m.bus_transfer_count for m in members),
                bus_words_transferred=sum(m.bus_words_transferred for m in members),
                bus_cancelled_count=sum(m.bus_cancelled_count for m in members),
                extra={"jobs": float(count)},
            )
        )
    return rows


def render_campaign_report(
    records: Sequence[Mapping[str, Any]],
    title: str = "Campaign report",
) -> str:
    """Text report: per-job rows, failures, and the aggregate table."""
    ok = [record for record in records if record.get("status") == "ok"]
    failed = [record for record in records if record.get("status") != "ok"]
    sections: List[str] = []
    if ok:
        job_rows = []
        for record in sorted(ok, key=lambda r: str(r.get("label", ""))):
            metrics = record["metrics"]
            job_rows.append(
                [
                    record.get("label", record.get("job_id", "?")),
                    f"{metrics['energy_saving_pct']:.1f}",
                    f"{metrics['temperature_reduction_pct']:.1f}",
                    f"{metrics['average_delay_overhead_pct']:.1f}",
                    str(int(metrics.get("tasks_executed", 0))),
                ]
            )
        sections.append(
            format_table(
                ["job", "saving (%)", "temp. red. (%)", "delay (%)", "tasks"],
                job_rows,
                title=f"{title} — per job",
            )
        )
        aggregate_rows = [
            [
                row.scenario,
                f"{row.energy_saving_pct:.1f}",
                f"{row.temperature_reduction_pct:.1f}",
                f"{row.average_delay_overhead_pct:.1f}",
                str(int(row.extra.get("jobs", 0))),
            ]
            for row in aggregate_records(records)
        ]
        sections.append(
            format_table(
                ["scenario/setup", "saving (%)", "temp. red. (%)", "delay (%)", "jobs"],
                aggregate_rows,
                title=f"{title} — aggregate (mean over seeds)",
            )
        )
    else:
        sections.append(f"{title}: no successful jobs stored")
    if failed:
        failure_rows = [
            [
                record.get("label", record.get("job_id", "?")),
                str(record.get("status", "?")),
                str(record.get("error", {}).get("message", ""))[:60],
            ]
            for record in sorted(failed, key=lambda r: str(r.get("label", "")))
        ]
        sections.append(
            format_table(["job", "status", "error"], failure_rows, title="Failures")
        )
    return "\n\n".join(sections)


def campaign_status(
    store: ResultStore,
    spec: Optional[CampaignSpec] = None,
) -> Dict[str, Any]:
    """Progress of a campaign directory against its (stored) spec."""
    if spec is None:
        spec = CampaignSpec.from_dict(store.read_manifest())
    jobs = spec.jobs()
    stored = {record["job_id"]: record for record in store.records()}
    counts = {"ok": 0, "error": 0, "timeout": 0, "missing": 0}
    missing: List[str] = []
    for job in jobs:
        record = stored.get(job.job_id)
        if record is None:
            counts["missing"] += 1
            missing.append(job.label)
        else:
            status = str(record.get("status", "error"))
            counts[status] = counts.get(status, 0) + 1
    return {
        "campaign": spec.name,
        "total_jobs": len(jobs),
        "counts": counts,
        "missing": missing,
        "directory": str(store.root),
    }


def render_status(status: Mapping[str, Any]) -> str:
    """Human-readable status block for the CLI."""
    counts = status["counts"]
    lines = [
        f"Campaign {status['campaign']!r} in {status['directory']}",
        f"  jobs:    {status['total_jobs']}",
        f"  ok:      {counts.get('ok', 0)}",
        f"  error:   {counts.get('error', 0)}",
        f"  timeout: {counts.get('timeout', 0)}",
        f"  missing: {counts.get('missing', 0)}",
    ]
    if status["missing"]:
        preview = ", ".join(status["missing"][:6])
        suffix = ", ..." if len(status["missing"]) > 6 else ""
        lines.append(f"  pending: {preview}{suffix}")
    return "\n".join(lines)
