"""Campaign execution: fan the job grid out over a worker pool.

The executor is deliberately simple and robust:

* every job is *pure data* (see :mod:`repro.campaign.spec`), so it pickles
  cleanly into a ``multiprocessing`` pool and its hash is stable;
* the worker (:func:`execute_job`) never raises — failures and per-job
  timeouts are captured as ``error`` / ``timeout`` records so one broken
  grid cell cannot take down a thousand-job campaign;
* the parent process writes each record to the
  :class:`~repro.campaign.store.ResultStore` as soon as it arrives, which
  makes interrupting a campaign safe: a later ``--resume`` run executes only
  the jobs with no stored ``ok`` record.

``workers=1`` runs in-process (no pool), which is the easiest mode to debug
and what the tests use for determinism checks; ``workers=N`` uses
``multiprocessing.Pool`` with ``imap_unordered`` so slow jobs do not hold
back the rest of the grid.
"""

from __future__ import annotations

import os
import signal
import time
import traceback
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Union

from repro.campaign.spec import CampaignSpec, JobSpec, build_scenario, build_setup
from repro.campaign.store import ResultStore
from repro.errors import CampaignError

__all__ = [
    "CampaignSummary",
    "execute_baseline",
    "execute_job",
    "preflight_campaign",
    "run_campaign",
]


@dataclass
class CampaignSummary:
    """What one ``run_campaign`` invocation did."""

    campaign: str
    total_jobs: int
    executed: int = 0
    skipped: int = 0
    ok: int = 0
    errors: int = 0
    timeouts: int = 0
    baseline_runs: int = 0
    baseline_reused: int = 0
    wall_clock_s: float = 0.0
    records: List[Dict[str, Any]] = field(default_factory=list)

    def as_dict(self) -> Dict[str, Any]:
        """Flat dictionary view (used by the CLI and benchmarks)."""
        return {
            "campaign": self.campaign,
            "total_jobs": self.total_jobs,
            "executed": self.executed,
            "skipped": self.skipped,
            "ok": self.ok,
            "errors": self.errors,
            "timeouts": self.timeouts,
            "baseline_runs": self.baseline_runs,
            "baseline_reused": self.baseline_reused,
            "wall_clock_s": self.wall_clock_s,
        }


class _JobTimeout(Exception):
    """Internal: the per-job alarm fired."""


def _run_with_timeout(func: Callable[[], Any], timeout_s: Optional[float]) -> Any:
    """Run ``func`` under a SIGALRM-based timeout (no-op where unsupported)."""
    if not timeout_s or not hasattr(signal, "SIGALRM"):
        return func()

    def _alarm(_signum, _frame):
        raise _JobTimeout()

    previous = signal.signal(signal.SIGALRM, _alarm)
    signal.setitimer(signal.ITIMER_REAL, timeout_s)
    try:
        return func()
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def execute_baseline(job_dict: Mapping[str, Any], timeout_s: Optional[float] = None) -> Dict[str, Any]:
    """Run one shared baseline and return its record (never raises).

    The record carries ``baseline_key``, ``status`` and (on success) the
    plain :class:`~repro.experiments.runner.BaselineFigures` dictionary that
    :func:`execute_job` consumes instead of re-simulating the baseline.
    """
    from repro.experiments.runner import run_baseline

    job = JobSpec.from_dict(job_dict)
    record: Dict[str, Any] = {
        "baseline_key": job.baseline_key,
        "scenario": job.scenario["name"],
        "baseline": job.baseline["name"],
        "seed": job.seed,
        "accuracy": job.accuracy,
        "worker_pid": os.getpid(),
    }
    wall_start = time.perf_counter()  # repro-lint: allow[DET-WALLCLOCK]
    try:
        scenario = build_scenario(job.scenario, seed=job.seed)
        figures = _run_with_timeout(
            lambda: run_baseline(
                scenario, build_setup(job.baseline), accuracy=job.accuracy
            ),
            timeout_s,
        )
    except _JobTimeout:
        record["status"] = "timeout"
    except Exception as error:  # noqa: BLE001 - jobs fall back to own baselines
        record["status"] = "error"
        record["error"] = {"type": type(error).__name__, "message": str(error)}
    else:
        record["status"] = "ok"
        record["figures"] = figures.as_dict()
    record["wall_clock_s"] = time.perf_counter() - wall_start  # repro-lint: allow[DET-WALLCLOCK]
    return record


def execute_job(
    job_dict: Mapping[str, Any],
    timeout_s: Optional[float] = None,
    baseline_figures: Optional[Mapping[str, Any]] = None,
    trace: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Run one campaign job and return its result record (never raises).

    The record always carries ``job_id``, ``job``, ``status`` and ``label``;
    successful jobs add ``metrics`` and ``per_ip``, failed jobs add ``error``.
    ``baseline_figures`` (a stored shared-baseline dictionary) skips the
    baseline simulation; runs are deterministic, so the result is identical.

    ``trace`` is an optional ``{"format": ..., "path": ...}`` mapping: the
    job's DPM run is traced to that file and successful records carry the
    path under ``"trace"``.  Tracing lives outside :class:`JobSpec`, so the
    job hash — and with it ``--resume`` — is unaffected.
    """
    from repro.experiments.runner import BaselineFigures, run_comparison

    job = JobSpec.from_dict(job_dict)
    record: Dict[str, Any] = {
        "job_id": job.job_id,
        "job": job.to_dict(),
        "label": job.label,
        "scenario": job.scenario["name"],
        "setup": job.setup["name"],
        "seed": job.seed,
        "accuracy": job.accuracy,
        "worker_pid": os.getpid(),
    }
    figures = None
    if baseline_figures is not None:
        try:
            figures = BaselineFigures.from_dict(baseline_figures)
            record["baseline_key"] = job.baseline_key
        except (KeyError, TypeError, ValueError):
            figures = None  # corrupt cache entry: recompute the baseline
    trace_request: Any = False
    if trace is not None:
        from repro.obs import TraceRequest

        trace_request = TraceRequest(format=trace["format"], path=trace["path"])
    wall_start = time.perf_counter()  # repro-lint: allow[DET-WALLCLOCK]
    try:
        scenario = build_scenario(job.scenario, seed=job.seed)
        metrics = _run_with_timeout(
            lambda: run_comparison(
                scenario,
                dpm=build_setup(job.setup),
                baseline=build_setup(job.baseline),
                accuracy=job.accuracy,
                baseline_figures=figures,
                trace=trace_request,
            ),
            timeout_s,
        )
    except _JobTimeout:
        record["status"] = "timeout"
        record["error"] = {
            "type": "JobTimeout",
            "message": f"job exceeded the {timeout_s:g} s timeout",
        }
    except Exception as error:  # noqa: BLE001 - one bad cell must not kill the pool
        record["status"] = "error"
        record["error"] = {
            "type": type(error).__name__,
            "message": str(error),
            "traceback": traceback.format_exc(),
        }
    else:
        record["status"] = "ok"
        record["metrics"] = metrics.as_dict()
        record["per_ip"] = metrics.per_ip
        if trace is not None:
            record["trace"] = str(trace["path"])
    record["wall_clock_s"] = time.perf_counter() - wall_start  # repro-lint: allow[DET-WALLCLOCK]
    return record


def preflight_campaign(spec: CampaignSpec) -> List[str]:
    """Reach-lint every distinct resolved platform scenario of a campaign.

    Campaign grids can reference hand-written platform spec files; a typo'd
    rule table or a policy that can never fire burns the whole grid's CPU
    budget before anyone looks at a result.  This walks the campaign's jobs,
    lints each distinct ``kind: "platform"`` scenario with the trajectory
    envelope attached (``lint_spec(reach=True)``) and raises
    :class:`~repro.errors.CampaignError` on the first platform with
    error-severity findings.  Returns one summary line per linted platform
    (name, finding counts) for the CLI to print.  Paper scenarios
    (``single_ip``/``multi_ip``) are library-built and not linted here.
    """
    from repro.lint import Severity, lint_spec
    from repro.platform.serialize import spec_hash
    from repro.platform.spec import PlatformSpec

    lines: List[str] = []
    seen: set = set()
    for job in spec.jobs():
        scenario = job.scenario
        if scenario.get("kind") != "platform":
            continue
        platform = PlatformSpec.from_dict(scenario["spec"])
        digest = spec_hash(platform)
        if digest in seen:
            continue
        seen.add(digest)
        report = lint_spec(platform, reach=True)
        errors = report.errors
        if errors:
            details = "; ".join(
                f"{finding.code} at {finding.path}: {finding.message}"
                for finding in errors[:3]
            )
            more = f" (+{len(errors) - 3} more)" if len(errors) > 3 else ""
            raise CampaignError(
                f"preflight: platform scenario {platform.name!r} has "
                f"{len(errors)} error-severity lint finding(s): "
                f"{details}{more} — fix the spec or pass --no-preflight"
            )
        lines.append(
            f"preflight ok: {platform.name} "
            f"({report.count(Severity.WARN)} warning(s), "
            f"{report.count(Severity.INFO)} info)"
        )
    return lines


def _execute_job_star(payload) -> Dict[str, Any]:
    """Pool adapter: unpack ``(job_dict, timeout_s, baseline_figures, trace)``."""
    job_dict, timeout_s, baseline_figures, trace = payload
    return execute_job(job_dict, timeout_s, baseline_figures, trace)


def _execute_baseline_star(payload) -> Dict[str, Any]:
    """Pool adapter: unpack ``(job_dict, timeout_s)``."""
    job_dict, timeout_s = payload
    return execute_baseline(job_dict, timeout_s)


def run_campaign(
    spec: CampaignSpec,
    directory: Union[str, os.PathLike],
    workers: int = 1,
    resume: bool = False,
    job_timeout_s: Optional[float] = None,
    progress: Optional[Callable[[Dict[str, Any]], None]] = None,
    trace_format: Optional[str] = None,
    preflight: bool = True,
) -> CampaignSummary:
    """Execute a campaign grid, persisting every result to ``directory``.

    Parameters
    ----------
    spec:
        The campaign to run.
    directory:
        Campaign directory; created if missing.  Holds the manifest and the
        content-addressed result records.
    workers:
        Pool size.  ``1`` runs in-process; ``N > 1`` fans out over a
        ``multiprocessing`` pool.
    resume:
        When true, jobs whose hash already has an ``ok`` record in the store
        are skipped, so only missing/changed/failed jobs execute.
    job_timeout_s:
        Per-job wall-clock timeout (overrides ``spec.job_timeout_s``).
    progress:
        Optional callback invoked with each record as it is stored.
    trace_format:
        When set (``"jsonl"`` or ``"perfetto"``), every executed job's DPM
        run is traced to ``<directory>/traces/<job_id>.<ext>`` and its
        record carries the path.  Job hashes are unaffected, so ``--resume``
        still matches records produced without tracing (and vice versa).
    preflight:
        When true (the default), every distinct ``kind: "platform"``
        scenario is reach-linted (:func:`preflight_campaign`) *before* any
        job runs; error-severity findings abort the campaign with a
        :class:`~repro.errors.CampaignError` instead of burning the grid's
        CPU budget on a broken spec.
    """
    if workers < 1:
        raise CampaignError("workers must be >= 1")
    if preflight:
        preflight_campaign(spec)
    timeout_s = job_timeout_s if job_timeout_s is not None else spec.job_timeout_s
    store = ResultStore(directory)
    store.write_manifest(spec.to_dict())
    job_trace: Callable[[JobSpec], Optional[Dict[str, Any]]] = lambda job: None
    if trace_format is not None:
        from repro.obs import TRACE_EXTENSIONS

        if trace_format not in ("jsonl", "perfetto"):
            raise CampaignError(
                f"campaign tracing supports jsonl/perfetto, not {trace_format!r}"
            )
        store.traces_dir.mkdir(parents=True, exist_ok=True)
        extension = TRACE_EXTENSIONS[trace_format]

        def job_trace(job: JobSpec) -> Optional[Dict[str, Any]]:
            return {
                "format": trace_format,
                "path": str(store.traces_dir / f"{job.job_id}.{extension}"),
            }
    jobs = spec.jobs()
    summary = CampaignSummary(campaign=spec.name, total_jobs=len(jobs))
    done = store.job_ids(status="ok") if resume else set()
    pending: List[JobSpec] = []
    for job in jobs:
        record = store.get(job.job_id) if job.job_id in done else None
        if record is not None:
            summary.skipped += 1
            summary.records.append(record)
        else:
            pending.append(job)

    wall_start = time.perf_counter()  # repro-lint: allow[DET-WALLCLOCK]

    # ------------------------------------------------------------------
    # Shared baselines: one run per (scenario, baseline, seed, accuracy)
    # cell instead of one per job.  Missing cells are computed first (through
    # the same pool), stored, and handed to the jobs as plain figures; a
    # failed baseline cell simply makes its jobs recompute their own.
    # ------------------------------------------------------------------
    baseline_jobs: Dict[str, JobSpec] = {}
    for job in pending:
        key = job.baseline_key
        if key not in baseline_jobs:
            baseline_jobs[key] = job
    cached_figures: Dict[str, Dict[str, Any]] = {}
    missing: List[JobSpec] = []
    for key, job in baseline_jobs.items():
        stored = store.get_baseline(key)
        if stored is not None and stored.get("status") == "ok" and "figures" in stored:
            cached_figures[key] = stored["figures"]
            summary.baseline_reused += 1
        else:
            missing.append(job)

    def consume_baseline(record: Dict[str, Any]) -> None:
        key = record.get("baseline_key", "")
        store.put_baseline(key, record)
        summary.baseline_runs += 1
        if record.get("status") == "ok" and "figures" in record:
            cached_figures[key] = record["figures"]

    def consume(record: Dict[str, Any]) -> None:
        store.put(record)
        summary.records.append(record)
        summary.executed += 1
        status = record.get("status")
        if status == "ok":
            summary.ok += 1
        elif status == "timeout":
            summary.timeouts += 1
        else:
            summary.errors += 1
        if progress is not None:
            progress(record)

    if workers == 1 or len(pending) <= 1:
        for job in missing:
            consume_baseline(execute_baseline(job.to_dict(), timeout_s))
        for job in pending:
            consume(execute_job(job.to_dict(), timeout_s,
                                cached_figures.get(job.baseline_key), job_trace(job)))
    else:
        import multiprocessing

        with multiprocessing.Pool(processes=min(workers, len(pending))) as pool:
            try:
                if missing:
                    baseline_payloads = [(job.to_dict(), timeout_s) for job in missing]
                    for record in pool.imap_unordered(_execute_baseline_star, baseline_payloads):
                        consume_baseline(record)
                payloads = [
                    (job.to_dict(), timeout_s, cached_figures.get(job.baseline_key),
                     job_trace(job))
                    for job in pending
                ]
                for record in pool.imap_unordered(_execute_job_star, payloads):
                    consume(record)
            except KeyboardInterrupt:
                # Everything already consumed is safely in the store; drop
                # the rest so a later --resume run picks the missing jobs up.
                pool.terminate()
                raise
    summary.wall_clock_s = time.perf_counter() - wall_start  # repro-lint: allow[DET-WALLCLOCK]
    summary.records.sort(key=lambda record: record.get("job_id", ""))
    return summary
