"""Declarative campaign specifications.

A *campaign* is a grid of experiments: scenarios x DPM setups x seeds x
parameter overrides.  The grid is described by a :class:`CampaignSpec`, which
can be built in Python or loaded from a JSON/TOML file, so new evaluation
grids (including *new scenarios*) can be defined without touching
:mod:`repro.experiments.scenarios`::

    {
      "name": "paper-grid",
      "scenarios": ["A1", "B",
                    {"kind": "single_ip", "name": "hot-low",
                     "battery": "low", "temperature": "high",
                     "task_count": 24},
                    {"kind": "platform", "file": "specs/my_soc.json"}],
      "setups": ["paper", "greedy-sleep",
                 {"name": "fixed-timeout", "timeout_ms": 2.0}],
      "seeds": [1, 2, 3],
      "overrides": [{}, {"task_count": 12}]
    }

Scenario entries may be paper row names, registered platform names, inline
``single_ip``/``multi_ip`` dictionaries, or ``platform`` entries referencing
a :class:`~repro.platform.spec.PlatformSpec` (inline under ``"spec"`` or via
a ``"file"`` path).  Platform entries are normalized to the *canonical
inline spec*, so their job hashes depend only on the platform's content —
moving or reformatting the spec file does not invalidate stored results.

:meth:`CampaignSpec.jobs` expands the grid into :class:`JobSpec` objects.
Every job is a *pure data* description (plain dictionaries), picklable for
the worker pool and stable under hashing: :attr:`JobSpec.job_id` is the
SHA-256 of the canonical JSON encoding, which is what the result store uses
as the content address for caching and ``--resume``.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.dpm.controller import DpmSetup
from repro.errors import CampaignError
from repro.experiments.scenarios import (
    Scenario,
    multi_ip_scenario,
    single_ip_scenario,
)
from repro.sim.simtime import ms

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "PAPER_SCENARIO_DEFS",
    "build_scenario",
    "build_setup",
    "canonical_json",
    "job_hash",
    "normalize_scenario",
    "normalize_setup",
]


# ----------------------------------------------------------------------
# Canonical encoding / hashing
# ----------------------------------------------------------------------
def canonical_json(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, no whitespace)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"))


def job_hash(value: Mapping[str, Any]) -> str:
    """Content address of a job description (first 16 hex digits of SHA-256)."""
    return hashlib.sha256(canonical_json(dict(value)).encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Scenario descriptions
# ----------------------------------------------------------------------
#: The paper's six scenarios as declarative dictionaries, so a spec file can
#: reference them by name ("A1" .. "C") and a grid seed can still re-seed them.
PAPER_SCENARIO_DEFS: Dict[str, Dict[str, Any]] = {
    "A1": {"kind": "single_ip", "name": "A1", "battery": "full", "temperature": "low"},
    "A2": {"kind": "single_ip", "name": "A2", "battery": "low", "temperature": "low"},
    "A3": {"kind": "single_ip", "name": "A3", "battery": "full", "temperature": "high"},
    "A4": {"kind": "single_ip", "name": "A4", "battery": "low", "temperature": "high"},
    "B": {
        "kind": "multi_ip",
        "name": "B",
        "battery": "low",
        "temperature": "low",
        "high_activity_ips": [1, 2],
    },
    "C": {
        "kind": "multi_ip",
        "name": "C",
        "battery": "low",
        "temperature": "low",
        "high_activity_ips": [3, 4],
    },
}

_SCENARIO_FIELDS: Dict[str, Dict[str, Any]] = {
    "single_ip": {
        "required": {"name", "battery", "temperature"},
        "optional": {"task_count", "workload_seed", "max_time_ms"},
    },
    "multi_ip": {
        "required": {"name", "battery", "temperature", "high_activity_ips"},
        "optional": {"task_count", "seed", "max_time_ms"},
    },
}


def normalize_scenario(value: Union[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Turn a scenario entry of a spec into a validated plain dictionary.

    Accepts one of the paper's row names (``"A1"`` .. ``"C"``), the name of
    any registered platform, or a dictionary with a ``kind`` of
    ``"single_ip"`` / ``"multi_ip"`` / ``"platform"``.  Platform entries
    reference a spec file (``"file"``) or carry the spec inline (``"spec"``);
    either way the normalized form inlines the *canonical* spec dictionary,
    so the job hash depends on the platform's content, never on file paths
    or formatting.
    """
    if isinstance(value, str):
        if value.upper() in PAPER_SCENARIO_DEFS:
            return dict(PAPER_SCENARIO_DEFS[value.upper()])
        from repro.platform.registry import has_platform, platform_by_name

        if has_platform(value):
            spec = platform_by_name(value)
            return {"kind": "platform", "name": spec.name, "spec": spec.to_dict()}
        raise CampaignError(
            f"unknown scenario {value!r} (expected one of "
            f"{', '.join(sorted(PAPER_SCENARIO_DEFS))}, or a registered "
            "platform name)"
        )
    if not isinstance(value, Mapping):
        raise CampaignError(f"scenario entries must be names or mappings, got {value!r}")
    scenario = dict(value)
    kind = scenario.get("kind")
    if kind == "platform":
        return _normalize_platform_scenario(scenario)
    if kind == "paper":
        merged = normalize_scenario(str(scenario.get("name", "")))
        for key, item in scenario.items():
            if key not in ("kind",):
                merged[key] = item
        merged["kind"] = merged.get("kind", "single_ip")
        scenario, kind = merged, merged["kind"]
    if kind not in _SCENARIO_FIELDS:
        raise CampaignError(
            f"unknown scenario kind {kind!r} (expected 'single_ip', 'multi_ip' or 'paper')"
        )
    fields = _SCENARIO_FIELDS[kind]
    missing = fields["required"] - set(scenario)
    if missing:
        raise CampaignError(
            f"scenario {scenario.get('name', '?')!r} is missing fields: {sorted(missing)}"
        )
    unknown = set(scenario) - fields["required"] - fields["optional"] - {"kind"}
    if unknown:
        raise CampaignError(
            f"scenario {scenario['name']!r} has unknown fields: {sorted(unknown)}"
        )
    if "high_activity_ips" in scenario:
        scenario["high_activity_ips"] = sorted(int(i) for i in scenario["high_activity_ips"])
    return scenario


def _anchor_platform_file(entry: Any, base_dir: str) -> Any:
    """Resolve a platform entry's relative ``file`` against ``base_dir``."""
    if (
        isinstance(entry, Mapping)
        and entry.get("kind") == "platform"
        and isinstance(entry.get("file"), str)
        and not os.path.isabs(entry["file"])
    ):
        anchored = dict(entry)
        anchored["file"] = os.path.join(base_dir, anchored["file"])
        return anchored
    return entry


def _normalize_platform_scenario(scenario: Dict[str, Any]) -> Dict[str, Any]:
    """Validate and canonicalise a ``kind: "platform"`` scenario entry."""
    from repro.errors import PlatformError
    from repro.platform.spec import PlatformSpec

    unknown = set(scenario) - {"kind", "name", "spec", "file", "max_time_ms"}
    if unknown:
        raise CampaignError(
            f"platform scenario entry has unknown fields: {sorted(unknown)} "
            "(allowed: kind, name, spec, file, max_time_ms)"
        )
    spec_dict = scenario.get("spec")
    if spec_dict is None:
        path = scenario.get("file")
        if not path:
            raise CampaignError(
                "a platform scenario entry needs an inline 'spec' or a 'file' path"
            )
        from repro.platform.serialize import load_spec_dict

        try:
            spec_dict = load_spec_dict(path)
        except (PlatformError, OSError) as error:
            raise CampaignError(f"cannot load platform spec {path!r}: {error}") from None
    if "max_time_ms" in scenario:
        spec_dict = dict(spec_dict)
        spec_dict["max_time_ms"] = float(scenario["max_time_ms"])
    try:
        spec = PlatformSpec.from_dict(spec_dict)
    except PlatformError as error:
        raise CampaignError(f"invalid platform scenario: {error}") from None
    return {"kind": "platform", "name": spec.name, "spec": spec.to_dict()}


def build_scenario(scenario: Mapping[str, Any], seed: Optional[int] = None) -> Scenario:
    """Instantiate a :class:`Scenario` from its declarative description.

    ``seed``, when given, replaces the workload seed of the description so a
    campaign can sweep seeds without editing the scenario entry.
    """
    from repro.analysis.report import PAPER_TABLE2

    description = normalize_scenario(scenario)
    kind = description["kind"]
    if kind == "platform":
        from repro.platform.build import to_scenario
        from repro.platform.spec import PlatformSpec

        return to_scenario(PlatformSpec.from_dict(description["spec"]), seed=seed)
    paper_row = PAPER_TABLE2.get(description["name"])
    if kind == "single_ip":
        built = single_ip_scenario(
            name=description["name"],
            battery=description["battery"],
            temperature=description["temperature"],
            workload_seed=seed if seed is not None else description.get("workload_seed", 11),
            task_count=description.get("task_count", 40),
            paper_row=paper_row,
        )
    else:
        built = multi_ip_scenario(
            name=description["name"],
            battery=description["battery"],
            temperature=description["temperature"],
            high_activity_ips=tuple(description["high_activity_ips"]),
            seed=seed if seed is not None else description.get("seed", 21),
            task_count=description.get("task_count", 24),
            paper_row=paper_row,
        )
    if "max_time_ms" in description:
        built.max_time = ms(float(description["max_time_ms"]))
    return built


# ----------------------------------------------------------------------
# Setup descriptions
# ----------------------------------------------------------------------
def normalize_setup(value: Union[str, Mapping[str, Any]]) -> Dict[str, Any]:
    """Turn a setup entry (name or mapping) into a validated dictionary."""
    if isinstance(value, str):
        setup: Dict[str, Any] = {"name": value}
    elif isinstance(value, Mapping):
        setup = dict(value)
    else:
        raise CampaignError(f"setup entries must be names or mappings, got {value!r}")
    name = setup.get("name")
    if not isinstance(name, str) or not name:
        raise CampaignError(f"setup entry {value!r} has no name")
    build_setup(setup)  # validate eagerly so spec errors surface at load time
    return setup


def build_setup(setup: Mapping[str, Any]) -> DpmSetup:
    """Instantiate a :class:`DpmSetup` from its declarative description."""
    name = setup["name"]
    params = {key: value for key, value in setup.items() if key != "name"}
    if name == "paper":
        result = DpmSetup.paper(allow_off=bool(params.pop("allow_off", True)))
    elif name == "always-on":
        result = DpmSetup.always_on()
    elif name == "greedy-sleep":
        result = DpmSetup.greedy_sleep(allow_off=bool(params.pop("allow_off", True)))
    elif name == "oracle":
        result = DpmSetup.oracle()
    elif name == "fixed-timeout":
        result = DpmSetup.fixed_timeout(ms(float(params.pop("timeout_ms", 2.0))))
    elif name.startswith("paper+"):
        try:
            result = DpmSetup.with_predictor(name[len("paper+"):])
        except ValueError as error:
            raise CampaignError(str(error)) from None
    else:
        raise CampaignError(
            f"unknown setup {name!r} (expected paper, always-on, greedy-sleep, "
            "oracle, fixed-timeout or paper+<predictor>)"
        )
    if params:
        raise CampaignError(f"setup {name!r} has unknown parameters: {sorted(params)}")
    return result


# ----------------------------------------------------------------------
# Jobs
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class JobSpec:
    """One cell of the campaign grid, as pure data.

    ``scenario`` already has any grid override merged in, so the job is fully
    self-describing: hashing :meth:`to_dict` uniquely identifies the work.
    """

    scenario: Mapping[str, Any]
    setup: Mapping[str, Any]
    baseline: Mapping[str, Any]
    seed: Optional[int] = None
    accuracy: str = "exact"

    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view used for hashing, storage and the worker pool.

        ``accuracy`` is only included when it differs from ``exact``, so the
        job ids of pre-accuracy-mode campaigns (and their stored results)
        remain valid for ``--resume``.
        """
        data = {
            "scenario": dict(self.scenario),
            "setup": dict(self.setup),
            "baseline": dict(self.baseline),
            "seed": self.seed,
        }
        if self.accuracy != "exact":
            data["accuracy"] = self.accuracy
        return data

    @staticmethod
    def from_dict(value: Mapping[str, Any]) -> "JobSpec":
        """Rebuild a job from :meth:`to_dict` output."""
        return JobSpec(
            scenario=dict(value["scenario"]),
            setup=dict(value["setup"]),
            baseline=dict(value["baseline"]),
            seed=value.get("seed"),
            accuracy=str(value.get("accuracy", "exact")),
        )

    @property
    def job_id(self) -> str:
        """Content address of this job (stable across processes and runs)."""
        return job_hash(self.to_dict())

    @property
    def baseline_key(self) -> str:
        """Content address of this job's baseline run.

        Keyed by (scenario, baseline setup, seed, accuracy mode) only — the
        DPM setup under study does not influence the baseline — so every job
        of a grid that shares a scenario cell shares one baseline run.
        """
        return job_hash(
            {
                "scenario": dict(self.scenario),
                "baseline": dict(self.baseline),
                "seed": self.seed,
                "accuracy": self.accuracy,
            }
        )

    @property
    def label(self) -> str:
        """Short human-readable identifier (not necessarily unique)."""
        seed = "-" if self.seed is None else str(self.seed)
        return f"{self.scenario['name']}/{self.setup['name']}/seed={seed}"


# ----------------------------------------------------------------------
# The campaign specification
# ----------------------------------------------------------------------
@dataclass
class CampaignSpec:
    """Declarative description of a grid of experiments."""

    name: str
    scenarios: List[Dict[str, Any]] = field(default_factory=list)
    setups: List[Dict[str, Any]] = field(default_factory=lambda: [{"name": "paper"}])
    seeds: List[Optional[int]] = field(default_factory=lambda: [None])
    overrides: List[Dict[str, Any]] = field(default_factory=lambda: [{}])
    baseline: Dict[str, Any] = field(default_factory=lambda: {"name": "always-on"})
    description: str = ""
    job_timeout_s: Optional[float] = None
    accuracy: str = "exact"

    def __post_init__(self) -> None:
        if not self.name:
            raise CampaignError("a campaign needs a name")
        if self.accuracy not in ("exact", "fast"):
            raise CampaignError(
                f"unknown accuracy mode {self.accuracy!r} (expected 'exact' or 'fast')"
            )
        if not self.scenarios:
            raise CampaignError(f"campaign {self.name!r} defines no scenarios")
        if not self.setups:
            raise CampaignError(f"campaign {self.name!r} defines no setups")
        self.scenarios = [normalize_scenario(entry) for entry in self.scenarios]
        self.setups = [normalize_setup(entry) for entry in self.setups]
        self.baseline = normalize_setup(self.baseline)
        self.seeds = list(self.seeds) or [None]
        self.overrides = [dict(entry) for entry in self.overrides] or [{}]
        for override in self.overrides:
            for key in override:
                if key == "kind" or any(
                    key in fields["required"] | fields["optional"]
                    for fields in _SCENARIO_FIELDS.values()
                ):
                    continue
                raise CampaignError(f"override key {key!r} is not a scenario field")
        if self.job_timeout_s is not None and self.job_timeout_s <= 0:
            raise CampaignError("job_timeout_s must be positive")

    # -- grid expansion -------------------------------------------------
    def jobs(self) -> List[JobSpec]:
        """Expand the grid into jobs (deterministic order, duplicates dropped)."""
        jobs: List[JobSpec] = []
        seen: set = set()
        for scenario in self.scenarios:
            for override in self.overrides:
                merged = dict(scenario)
                # Platform scenarios are self-contained specs: only the time
                # budget can be overridden from the grid, other scenario
                # fields (task_count, ...) silently skip them so mixed grids
                # can still share one override list.
                if scenario.get("kind") == "platform":
                    applicable = {"max_time_ms"}
                else:
                    applicable = None
                merged.update(
                    {
                        key: value
                        for key, value in override.items()
                        if key != "kind" and (applicable is None or key in applicable)
                    }
                )
                merged = normalize_scenario(merged)
                for setup in self.setups:
                    for seed in self.seeds:
                        job = JobSpec(
                            scenario=merged,
                            setup=setup,
                            baseline=self.baseline,
                            seed=seed,
                            accuracy=self.accuracy,
                        )
                        if job.job_id not in seen:
                            seen.add(job.job_id)
                            jobs.append(job)
        return jobs

    # -- (de)serialisation ---------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Plain-data view, suitable for JSON storage in the campaign directory."""
        data: Dict[str, Any] = {
            "name": self.name,
            "scenarios": [dict(entry) for entry in self.scenarios],
            "setups": [dict(entry) for entry in self.setups],
            "seeds": list(self.seeds),
            "overrides": [dict(entry) for entry in self.overrides],
            "baseline": dict(self.baseline),
        }
        if self.description:
            data["description"] = self.description
        if self.job_timeout_s is not None:
            data["job_timeout_s"] = self.job_timeout_s
        if self.accuracy != "exact":
            data["accuracy"] = self.accuracy
        return data

    @staticmethod
    def from_dict(value: Mapping[str, Any]) -> "CampaignSpec":
        """Build a spec from a plain dictionary (parsed JSON/TOML)."""
        if not isinstance(value, Mapping):
            raise CampaignError(f"a campaign spec must be a mapping, got {value!r}")
        known = {
            "name", "scenarios", "setups", "seeds", "overrides",
            "baseline", "description", "job_timeout_s", "accuracy",
        }
        unknown = set(value) - known
        if unknown:
            raise CampaignError(f"unknown campaign fields: {sorted(unknown)}")
        if "name" not in value:
            raise CampaignError("a campaign spec needs a 'name'")
        kwargs: Dict[str, Any] = {"name": value["name"]}
        kwargs["scenarios"] = list(value.get("scenarios", []))
        if "setups" in value:
            kwargs["setups"] = list(value["setups"])
        if "seeds" in value:
            kwargs["seeds"] = [None if seed is None else int(seed) for seed in value["seeds"]]
        if "overrides" in value:
            kwargs["overrides"] = list(value["overrides"])
        if "baseline" in value:
            kwargs["baseline"] = value["baseline"]
        kwargs["description"] = str(value.get("description", ""))
        if value.get("job_timeout_s") is not None:
            kwargs["job_timeout_s"] = float(value["job_timeout_s"])
        kwargs["accuracy"] = str(value.get("accuracy", "exact"))
        return CampaignSpec(**kwargs)

    @staticmethod
    def from_file(path: Union[str, os.PathLike]) -> "CampaignSpec":
        """Load a spec from a ``.json`` or ``.toml`` file.

        Relative ``file`` references inside platform scenario entries are
        resolved against the spec file's own directory, so a campaign and
        the platform specs it sweeps can travel together regardless of the
        process working directory.
        """
        from repro.errors import PlatformError
        from repro.platform.serialize import load_spec_dict

        try:
            data = load_spec_dict(path)
        except PlatformError as error:
            raise CampaignError(str(error)) from None
        if isinstance(data, Mapping):
            base_dir = os.path.dirname(os.path.abspath(str(path)))
            scenarios = data.get("scenarios")
            if isinstance(scenarios, list):
                data = dict(data)
                data["scenarios"] = [
                    _anchor_platform_file(entry, base_dir) for entry in scenarios
                ]
        return CampaignSpec.from_dict(data)
