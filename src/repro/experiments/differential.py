"""Differential oracles: one platform, every execution path, agreement checks.

The reproduction exposes four independent execution axes — accuracy mode
(``exact`` vs ``fast``), bus timing (event-driven vs cycle-accurate), kernel
backend (python vs native) and DPM policy (paper vs always-on vs greedy) —
that must agree up to documented tolerances.  :func:`run_differential` runs a
single :class:`~repro.platform.spec.PlatformSpec` through all of them and
returns one :class:`OracleVerdict` per oracle:

``exact_vs_fast``
    Fast-mode energies within relative ``1e-9``, temperatures and battery
    state-of-charge within ``1e-6``; event times, task counts and PSM
    transition counts exactly equal (the documented fast-mode contract, see
    ``tests/experiments/test_accuracy_modes.py``).
``backend_parity``
    Exact-mode metrics bit-identical between the python and native kernel
    backends (skipped when the native extension is not built).
``bus_timing``
    Event-driven vs cycle-accurate bus under an always-on setup (isolating
    arbitration from DPM decision cascades): identical task counts and
    transfer counts, every completion within the accumulated grant-alignment
    bound of one bus period per grant.  Skipped on bus-less platforms.
``policy``
    Paper policy vs always-on baseline and greedy-sleep: whenever the
    baseline drains the workload within the budget, so must the DPM runs
    (no deadline regression; GEM-enabled platforms may legitimately park
    low-priority IPs and report ``skip``), and the paper policy's energy
    deficit against the baseline never exceeds the transition energy it
    invested (mispredicted sleeps waste their overhead, never more).
``structural``
    Single-run invariants: battery state-of-charge monotone non-increasing
    while discharging, per-IP PSM residency sums to the simulated time
    (plus at most the completed transition latencies, which the PSM books
    against the source state *on top of* the elapsed-time integration),
    bus grants matched by releases, and well-ordered execution records.
``lint_reach``
    Static analysis agrees with dynamics: the spec is linted with the
    trajectory envelope attached (``lint_spec(reach=True)``, findings are
    advisory for generated platforms), every ``lem.decision`` context of
    a traced run lies inside the reachability envelope
    (:func:`repro.lint.reach.compute_reach`), and rules the analysis
    declared statically shadowed or trajectory-dead never fire.  An
    escape is an unsoundness in the abstract interpretation; a dead rule
    firing is a lint false positive — either way a generated platform
    just disproved a static claim.

Oracles that cannot apply (no bus, native unavailable, baseline exhausted
its budget) report ``skip`` with a reason rather than vanishing silently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.dpm.controller import DpmSetup
from repro.errors import ExperimentError, ReproError
from repro.experiments.runner import RunArtifacts, run_scenario
from repro.platform.serialize import spec_hash
from repro.platform.spec import PlatformSpec
from repro.power.states import PowerState

__all__ = [
    "ALL_ORACLES",
    "DifferentialResult",
    "ENERGY_RTOL",
    "OracleVerdict",
    "POLICY_SAVING_SLACK",
    "TEMPERATURE_RTOL",
    "run_differential",
]

#: Documented fast-mode tolerance on energy figures (relative).
ENERGY_RTOL = 1e-9
#: Documented fast-mode tolerance on temperatures and state-of-charge (relative).
TEMPERATURE_RTOL = 1e-6
#: Float-noise slack (relative to the baseline energy) on the policy
#: oracle's deficit bound: the paper policy may exceed the always-on
#: baseline's energy by at most its own transition overhead plus this.
POLICY_SAVING_SLACK = 1e-9

ALL_ORACLES = (
    "exact_vs_fast",
    "backend_parity",
    "bus_timing",
    "policy",
    "structural",
    "lint_reach",
)


@dataclass(frozen=True)
class OracleVerdict:
    """Outcome of one oracle on one platform."""

    oracle: str
    status: str  # "pass" | "fail" | "skip"
    detail: str = ""

    @property
    def passed(self) -> bool:
        return self.status == "pass"

    @property
    def failed(self) -> bool:
        return self.status == "fail"

    def as_dict(self) -> Dict[str, str]:
        return {"oracle": self.oracle, "status": self.status, "detail": self.detail}


@dataclass
class DifferentialResult:
    """All oracle verdicts for one platform spec."""

    spec_name: str
    spec_hash: str
    verdicts: List[OracleVerdict] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no oracle failed (skips do not count against the spec)."""
        return not self.failures

    @property
    def failures(self) -> List[OracleVerdict]:
        return [verdict for verdict in self.verdicts if verdict.failed]

    def verdict(self, oracle: str) -> Optional[OracleVerdict]:
        for verdict in self.verdicts:
            if verdict.oracle == oracle:
                return verdict
        return None

    def summary(self) -> str:
        """One line per oracle, prefixed by the overall outcome."""
        head = "ok" if self.ok else "FAIL"
        lines = [f"{head} {self.spec_name} [{self.spec_hash[:12]}]"]
        for verdict in self.verdicts:
            mark = {"pass": "+", "fail": "!", "skip": "~"}[verdict.status]
            line = f"  {mark} {verdict.oracle:<14} {verdict.status}"
            if verdict.detail:
                line += f": {verdict.detail}"
            lines.append(line)
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        return {
            "spec_name": self.spec_name,
            "spec_hash": self.spec_hash,
            "ok": self.ok,
            "verdicts": [verdict.as_dict() for verdict in self.verdicts],
        }


# ----------------------------------------------------------------------
# Comparison helpers
# ----------------------------------------------------------------------
def _rel(a: float, b: float) -> float:
    scale = max(abs(a), abs(b))
    if scale == 0.0:
        return 0.0
    return abs(a - b) / scale


def _execution_key(execution) -> tuple:
    return (execution.ip_name, execution.task.name)


def _check_run_agreement(
    reference: RunArtifacts,
    candidate: RunArtifacts,
    energy_rtol: float,
    temperature_rtol: float,
    exact_times: bool = True,
) -> List[str]:
    """Compare two runs of the *same* scenario; return mismatch descriptions."""
    problems: List[str] = []
    if reference.all_tasks_completed != candidate.all_tasks_completed:
        problems.append(
            f"completion flag differs: {reference.all_tasks_completed} "
            f"vs {candidate.all_tasks_completed}"
        )
    delta = _rel(reference.total_energy_j, candidate.total_energy_j)
    if delta > energy_rtol:
        problems.append(
            f"total energy {reference.total_energy_j!r} vs "
            f"{candidate.total_energy_j!r} (rel {delta:.3e} > {energy_rtol:.0e})"
        )
    for label, a, b in (
        ("average rise", reference.average_rise_c, candidate.average_rise_c),
        ("peak temperature", reference.peak_temperature_c, candidate.peak_temperature_c),
        (
            "battery SoC",
            reference.soc.battery.state_of_charge,
            candidate.soc.battery.state_of_charge,
        ),
    ):
        delta = _rel(a, b)
        if delta > temperature_rtol:
            problems.append(f"{label} {a!r} vs {b!r} (rel {delta:.3e} > {temperature_rtol:.0e})")
    if len(reference.executions) != len(candidate.executions):
        problems.append(
            f"task count {len(reference.executions)} vs {len(candidate.executions)}"
        )
        return problems  # per-task comparison is meaningless past this point
    for ref_run, cand_run in zip(reference.executions, candidate.executions):
        if _execution_key(ref_run) != _execution_key(cand_run):
            problems.append(
                f"execution order differs: {_execution_key(ref_run)} vs "
                f"{_execution_key(cand_run)}"
            )
            break
        if exact_times:
            for label, a, b in (
                ("request", ref_run.request_time, cand_run.request_time),
                ("grant", ref_run.grant_time, cand_run.grant_time),
                ("completion", ref_run.completion_time, cand_run.completion_time),
            ):
                if a != b:
                    problems.append(
                        f"{ref_run.ip_name}/{ref_run.task.name} {label} time "
                        f"{a!r} vs {b!r}"
                    )
        delta = _rel(ref_run.energy_j, cand_run.energy_j)
        if delta > energy_rtol:
            problems.append(
                f"{ref_run.ip_name}/{ref_run.task.name} energy {ref_run.energy_j!r} "
                f"vs {cand_run.energy_j!r} (rel {delta:.3e})"
            )
    ref_ips = {
        instance.spec.name: instance.psm.transition_counts
        for instance in reference.soc.instances
    }
    cand_ips = {
        instance.spec.name: instance.psm.transition_counts
        for instance in candidate.soc.instances
    }
    if ref_ips != cand_ips:
        problems.append(f"transition counts differ: {ref_ips} vs {cand_ips}")
    return problems


def _spec_with_bus_timing(spec: PlatformSpec, timing: str) -> PlatformSpec:
    data = spec.to_dict()
    bus = dict(data.get("bus", {}))
    bus["timing"] = timing
    data["bus"] = bus
    return PlatformSpec.from_dict(data)


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def _oracle_exact_vs_fast(spec: PlatformSpec, base: RunArtifacts, backend) -> OracleVerdict:
    # setup=None honours the spec's own policy (defaulting to the paper DPM),
    # so generated PolicyDefs are exercised by the accuracy contract too.
    fast = run_scenario(spec, None, accuracy="fast", trace=False, backend=backend)
    problems = _check_run_agreement(base, fast, ENERGY_RTOL, TEMPERATURE_RTOL)
    if problems:
        return OracleVerdict("exact_vs_fast", "fail", "; ".join(problems))
    return OracleVerdict("exact_vs_fast", "pass")


def _oracle_backend_parity(spec: PlatformSpec, base: RunArtifacts) -> OracleVerdict:
    from repro.sim.native import available, unavailable_reason

    if not available():
        return OracleVerdict(
            "backend_parity", "skip", f"native backend unavailable: {unavailable_reason()}"
        )
    runs = {}
    for backend in ("python", "native"):
        if base.backend == backend:
            runs[backend] = base
        else:
            runs[backend] = run_scenario(
                spec, None, accuracy="exact", trace=False, backend=backend
            )
    # Exact mode must be *bit-identical* across backends: zero tolerance.
    problems = _check_run_agreement(runs["python"], runs["native"], 0.0, 0.0)
    if runs["python"].end_time != runs["native"].end_time:
        problems.append(
            f"end time {runs['python'].end_time!r} vs {runs['native'].end_time!r}"
        )
    if problems:
        return OracleVerdict("backend_parity", "fail", "; ".join(problems))
    return OracleVerdict("backend_parity", "pass")


def _oracle_bus_timing(spec: PlatformSpec, backend) -> OracleVerdict:
    if spec.bus is None or not spec.bus.enabled:
        return OracleVerdict("bus_timing", "skip", "platform has no bus")
    if not any(ip.bus_words_per_task for ip in spec.ips):
        return OracleVerdict("bus_timing", "skip", "no IP produces bus traffic")
    runs = {}
    for timing in ("event_driven", "cycle_accurate"):
        # Always-on isolates bus arbitration from DPM decision cascades: a
        # one-period grant shift must not flip a sleep decision and snowball.
        runs[timing] = run_scenario(
            _spec_with_bus_timing(spec, timing),
            DpmSetup.always_on(),
            accuracy="exact",
            trace=False,
            backend=backend,
        )
    ed, ca = runs["event_driven"], runs["cycle_accurate"]
    problems: List[str] = []
    if ed.all_tasks_completed != ca.all_tasks_completed:
        problems.append(
            f"completion flag differs: ED {ed.all_tasks_completed} vs CA "
            f"{ca.all_tasks_completed}"
        )
    if len(ed.executions) != len(ca.executions):
        problems.append(f"task count ED {len(ed.executions)} vs CA {len(ca.executions)}")
    ed_stats, ca_stats = ed.soc.bus.stats, ca.soc.bus.stats
    if ed_stats.transfer_count != ca_stats.transfer_count:
        problems.append(
            f"transfer count ED {ed_stats.transfer_count} vs CA {ca_stats.transfer_count}"
        )
    if ed_stats.words_transferred != ca_stats.words_transferred:
        problems.append(
            f"words transferred ED {ed_stats.words_transferred} vs CA "
            f"{ca_stats.words_transferred}"
        )
    bus_masters = [ip for ip in spec.ips if ip.bus_words_per_task]
    if not problems and len(bus_masters) == 1:
        # With a single bus master there is no contention to reorder: each
        # CA grant lands on the next posedge, at most one bus period after
        # its ED counterpart, plus up to one period of ceil-quantised
        # duration — and the shifts accumulate across the dependent
        # transfer chain, so the i-th completion may skew by up to
        # 2 * (i + 1) bus periods but no more.  (Under contention the CA
        # posedge batch can legitimately arbitrate simultaneous requests in
        # a different order than ED's arrival order, shifting completions
        # by whole transfer durations; the count/word equalities above are
        # the multi-master contract, timing is pinned by the fixed cases in
        # tests/soc/test_bus_service.py.)
        period_fs = int(ca.soc.bus.clock.period)
        for index, (ed_run, ca_run) in enumerate(zip(ed.executions, ca.executions)):
            if _execution_key(ed_run) != _execution_key(ca_run):
                problems.append(
                    f"execution order differs at #{index}: {_execution_key(ed_run)} "
                    f"vs {_execution_key(ca_run)}"
                )
                break
            skew = abs(int(ca_run.completion_time) - int(ed_run.completion_time))
            bound = 2 * (index + 1) * period_fs
            if skew > bound:
                problems.append(
                    f"{ca_run.ip_name}/{ca_run.task.name} completion skew "
                    f"{skew} fs > {2 * (index + 1)} bus period(s) ({bound} fs)"
                )
    if problems:
        return OracleVerdict("bus_timing", "fail", "; ".join(problems))
    return OracleVerdict("bus_timing", "pass")


def _oracle_policy(spec: PlatformSpec, backend) -> OracleVerdict:
    runs: Dict[str, RunArtifacts] = {}
    for name, setup in (
        ("paper", DpmSetup.paper()),
        ("always-on", DpmSetup.always_on()),
        ("greedy-sleep", DpmSetup.greedy_sleep()),
    ):
        runs[name] = run_scenario(spec, setup, accuracy="exact", trace=False, backend=backend)
    baseline = runs["always-on"]
    if not baseline.all_tasks_completed:
        return OracleVerdict(
            "policy", "skip", "always-on baseline exhausted the time budget"
        )
    problems: List[str] = []
    for name in ("paper", "greedy-sleep"):
        if not runs[name].all_tasks_completed:
            if spec.gem.enabled:
                # The GEM legitimately parks low-priority IPs under stressed
                # battery/thermal rules — deliberate deadline sacrifice, not
                # a policy bug (the always-on baseline runs without a GEM).
                return OracleVerdict(
                    "policy",
                    "skip",
                    f"{name} missed the budget with the GEM enabled "
                    "(rules may park low-priority IPs by design)",
                )
            problems.append(
                f"{name} missed the budget the always-on baseline met "
                "(deadline regression)"
            )
    if not problems:
        # "Energy saving never negative" holds asymptotically, but a tiny
        # workload gives the predictor no amortisation window: a mispredicted
        # sleep can cost more than it saves.  What the policy can *never* do
        # is lose more than the transition energy it invested — sleep and
        # DVFS residency always save power against the always-on baseline,
        # only the transition overheads are at risk.  That overhead is the
        # documented bound on the deficit.
        paper = runs["paper"]
        overhead_j = 0.0
        for instance in paper.soc.instances:
            psm = instance.psm
            for label, count in psm.transition_counts.items():
                source, _, target = label.partition("->")
                overhead_j += count * psm.transitions.energy_j(
                    PowerState(source), PowerState(target)
                )
        deficit = paper.total_energy_j - baseline.total_energy_j
        slack = POLICY_SAVING_SLACK * baseline.total_energy_j
        if deficit > overhead_j + slack:
            saving = 1.0 - paper.total_energy_j / baseline.total_energy_j
            problems.append(
                f"paper policy wastes energy beyond its transition overhead: "
                f"saving {saving:.3e}, deficit {deficit:.3e} J > "
                f"transition overhead {overhead_j:.3e} J "
                f"(paper {paper.total_energy_j!r} J, "
                f"always-on {baseline.total_energy_j!r} J)"
            )
    if problems:
        return OracleVerdict("policy", "fail", "; ".join(problems))
    return OracleVerdict("policy", "pass")


def _oracle_structural(spec: PlatformSpec, base: RunArtifacts) -> OracleVerdict:
    problems: List[str] = []
    soc = base.soc
    # Battery: state-of-charge must never rise while discharging.
    if not soc.battery.config.on_ac_power:
        history = soc.battery_monitor.history
        for (t_prev, soc_prev), (t_next, soc_next) in zip(history, history[1:]):
            if soc_next > soc_prev + 1e-15:
                problems.append(
                    f"battery SoC rose while discharging: {soc_prev!r} -> "
                    f"{soc_next!r} at {t_next!r}"
                )
                break
    # PSM residency: the integrated state times cover the whole run.  The
    # PSM books each completed transition's latency against the source state
    # *in addition to* the elapsed-time integration (pinned golden
    # behaviour), so the sum may exceed the end time by exactly that much.
    for instance in soc.instances:
        psm = instance.psm
        total_fs = sum(int(value) for value in psm.residency().values())
        slack_fs = 0
        for label, count in psm.transition_counts.items():
            source, _, target = label.partition("->")
            latency = psm.transitions.latency(PowerState(source), PowerState(target))
            slack_fs += count * int(latency)
        end_fs = int(base.end_time)
        if not (end_fs <= total_fs <= end_fs + slack_fs):
            problems.append(
                f"{instance.spec.name}: residency sum {total_fs} fs outside "
                f"[{end_fs}, {end_fs + slack_fs}] fs"
            )
    # Bus: every grant must be matched by a release (transfer or cancel).
    if soc.bus is not None:
        stats = soc.bus.stats
        if stats.grant_count != stats.transfer_count + stats.cancelled_count:
            problems.append(
                f"unbalanced bus grants: {stats.grant_count} grants vs "
                f"{stats.transfer_count} transfers + {stats.cancelled_count} cancelled"
            )
    # Executions: request <= grant <= completion <= end of run.
    end_fs = int(base.end_time)
    for execution in base.executions:
        if not (
            int(execution.request_time)
            <= int(execution.grant_time)
            <= int(execution.completion_time)
            <= end_fs
        ):
            problems.append(
                f"{execution.ip_name}/{execution.task.name} has disordered "
                f"times: request {execution.request_time!r}, grant "
                f"{execution.grant_time!r}, completion {execution.completion_time!r}"
            )
            break
    if problems:
        return OracleVerdict("structural", "fail", "; ".join(problems))
    return OracleVerdict("structural", "pass")


def _oracle_lint_reach(spec: PlatformSpec, backend) -> OracleVerdict:
    """Static lint (with the trajectory envelope) vs one traced run."""
    import tempfile
    from pathlib import Path

    from repro.experiments.lint_crosscheck import decision_contexts
    from repro.lint import build_model, lint_spec, spec_rule_table
    from repro.lint.reach import compute_reach
    from repro.obs.session import TraceRequest

    # Lint findings on a *generated* spec are advisory (the generator is
    # free to produce saturated buses or hopeless break-evens; the corpus
    # sidecar records them at save time).  What the oracle enforces is the
    # *agreement* between the static claims and a traced run: containment
    # in the reachable envelope and silence of statically-dead rules.
    report = lint_spec(spec, reach=True)
    reach = compute_reach(build_model(spec))
    table = spec_rule_table(spec)
    with tempfile.TemporaryDirectory() as tmp:
        trace_path = Path(tmp) / "lint_reach_trace.jsonl"
        request = TraceRequest(
            format="jsonl", path=str(trace_path), events=("lem.decision",)
        )
        artifacts = run_scenario(spec, None, trace=request, backend=backend)
        contexts = decision_contexts(artifacts.trace_path or trace_path)
    problems: List[str] = []
    escapes = [c for c in contexts if not reach.is_reachable(c)]
    for context in escapes[:3]:
        problems.append(
            f"observed context escapes the reachable envelope: "
            f"{context.describe()}"
        )
    if len(escapes) > 3:
        problems.append(f"... and {len(escapes) - 3} more escape(s)")
    if table is not None and contexts:
        fired: Dict[int, int] = {}
        for context in contexts:
            index = table.first_match_index(context)
            if index is not None:
                fired[index] = fired.get(index, 0) + 1
        live = reach.live_rule_indices(table)
        for index in sorted(fired):
            if index in set(table.unreachable_rules()):
                problems.append(
                    f"statically shadowed rule {index} "
                    f"({table.rules[index].describe()}) won "
                    f"{fired[index]} decision(s)"
                )
            elif index not in live:
                problems.append(
                    f"trajectory-dead rule {index} "
                    f"({table.rules[index].describe()}) won "
                    f"{fired[index]} decision(s)"
                )
    if problems:
        return OracleVerdict("lint_reach", "fail", "; ".join(problems))
    detail = (
        f"{len(contexts)} decision(s) contained"
        if contexts else "no rule decisions traced; envelope vacuously sound"
    )
    if report.errors:
        detail += f" ({len(report.errors)} advisory lint error(s) on the spec)"
    return OracleVerdict("lint_reach", "pass", detail)


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def run_differential(
    spec: PlatformSpec,
    oracles: Optional[Sequence[str]] = None,
    backend: Optional[str] = None,
) -> DifferentialResult:
    """Run ``spec`` through every differential oracle and collect verdicts.

    ``oracles`` restricts the set (names from :data:`ALL_ORACLES`);
    ``backend`` fixes the kernel backend of the base runs (the
    ``backend_parity`` oracle always compares python against native
    regardless).  Simulator crashes inside an oracle are reported as
    failures of that oracle, not raised — a generated platform that blows
    up one execution path is exactly what the fuzzer is looking for.
    """
    selected = list(oracles) if oracles is not None else list(ALL_ORACLES)
    unknown = [name for name in selected if name not in ALL_ORACLES]
    if unknown:
        raise ExperimentError(
            f"unknown oracle(s) {unknown!r}; expected names from {ALL_ORACLES!r}"
        )
    result = DifferentialResult(spec_name=spec.name, spec_hash=spec_hash(spec))

    base: Optional[RunArtifacts] = None
    needs_base = {"exact_vs_fast", "backend_parity", "structural"} & set(selected)
    if needs_base:
        try:
            base = run_scenario(
                spec, None, accuracy="exact", trace=False, backend=backend
            )
        except ReproError as error:
            for name in ALL_ORACLES:
                if name in needs_base:
                    result.verdicts.append(
                        OracleVerdict(name, "fail", f"base run crashed: {error}")
                    )
            needs_base = set()

    for name in ALL_ORACLES:
        if name not in selected:
            continue
        if name in {"exact_vs_fast", "backend_parity", "structural"} and base is None:
            continue  # already reported as a base-run failure above
        try:
            if name == "exact_vs_fast":
                verdict = _oracle_exact_vs_fast(spec, base, backend)
            elif name == "backend_parity":
                verdict = _oracle_backend_parity(spec, base)
            elif name == "bus_timing":
                verdict = _oracle_bus_timing(spec, backend)
            elif name == "policy":
                verdict = _oracle_policy(spec, backend)
            elif name == "lint_reach":
                verdict = _oracle_lint_reach(spec, backend)
            else:
                verdict = _oracle_structural(spec, base)
        except ReproError as error:
            verdict = OracleVerdict(name, "fail", f"oracle crashed: {error}")
        result.verdicts.append(verdict)
    return result
