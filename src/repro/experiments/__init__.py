"""Experiment catalogue and runners reproducing the paper's evaluation."""

from repro.experiments.differential import (
    ALL_ORACLES,
    DifferentialResult,
    OracleVerdict,
    run_differential,
)
from repro.experiments.lint_crosscheck import (
    CrosscheckResult,
    crosscheck_paper_platforms,
    crosscheck_scenario,
    decision_contexts,
)
from repro.experiments.runner import (
    BaselineFigures,
    RunArtifacts,
    run_baseline,
    run_comparison,
    run_scenario,
)
from repro.experiments.scenarios import (
    Scenario,
    battery_condition,
    multi_ip_scenario,
    paper_scenarios,
    scenario_a_workload,
    scenario_by_name,
    single_ip_scenario,
    thermal_condition,
)
from repro.experiments.sweep import condition_sweep, policy_ablation, predictor_ablation
from repro.experiments.table2 import (
    reproduce_table2,
    simulation_speed,
    simulation_speed_report,
    table2_report,
)

__all__ = [
    "ALL_ORACLES",
    "BaselineFigures",
    "CrosscheckResult",
    "DifferentialResult",
    "OracleVerdict",
    "RunArtifacts",
    "Scenario",
    "battery_condition",
    "condition_sweep",
    "crosscheck_paper_platforms",
    "crosscheck_scenario",
    "decision_contexts",
    "multi_ip_scenario",
    "paper_scenarios",
    "policy_ablation",
    "predictor_ablation",
    "reproduce_table2",
    "run_baseline",
    "run_comparison",
    "run_differential",
    "run_scenario",
    "scenario_a_workload",
    "scenario_by_name",
    "simulation_speed",
    "simulation_speed_report",
    "single_ip_scenario",
    "table2_report",
    "thermal_condition",
]
