"""The scenario catalogue of the paper's evaluation (section 2).

Four single-IP simulations (A1–A4) run *the same sequence of tasks* under
different battery / temperature conditions, and two four-IP simulations with
a GEM (B, C) differ in which IPs are busy:

====  =======  ===========  ==========================================
id    battery  temperature  IP activity
====  =======  ===========  ==========================================
A1    Full     Low          1 IP, mixed busy/idle sequence
A2    Low      Low          same sequence
A3    Full     High         same sequence
A4    Low      High         same sequence
B     Low      Low          IP1/IP2 high activity, IP3/IP4 low activity
C     Low      Low          IP1/IP2 low activity, IP3/IP4 high activity
====  =======  ===========  ==========================================

Scenario objects only *describe* the experiment (factories for the IP specs
and the SoC configuration); the :mod:`repro.experiments.runner` builds and
simulates them, once with the paper's DPM and once with the always-on
baseline, to produce one row of Table 2.

The catalogue itself now lives in the named platform registry
(:mod:`repro.platform.registry`): the six rows are thin declarative
:class:`~repro.platform.spec.PlatformSpec` objects, and
:func:`scenario_by_name` resolves any registered platform — paper row or
user-defined — by name.  The legacy factory helpers below
(:func:`single_ip_scenario`, :func:`multi_ip_scenario`) remain for callers
that build scenarios programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.battery.model import BatteryConfig
from repro.errors import ExperimentError
from repro.sim.simtime import SimTime, sec
from repro.soc.soc import IpSpec, SocConfig
from repro.soc.workload import (
    Workload,
    high_activity_workload,
    low_activity_workload,
    random_workload,
)
from repro.thermal.model import ThermalConfig

__all__ = [
    "Scenario",
    "battery_condition",
    "thermal_condition",
    "scenario_a_workload",
    "single_ip_scenario",
    "multi_ip_scenario",
    "paper_scenarios",
    "scenario_by_name",
]


@dataclass
class Scenario:
    """Declarative description of one experiment."""

    name: str
    description: str
    ip_specs_factory: Callable[[], List[IpSpec]]
    soc_config_factory: Callable[[], SocConfig]
    max_time: SimTime = field(default_factory=lambda: sec(5))
    paper_row: Optional[Dict[str, float]] = None

    def build_specs(self) -> List[IpSpec]:
        """Fresh IP specifications for one run."""
        return self.ip_specs_factory()

    def build_config(self) -> SocConfig:
        """Fresh SoC configuration for one run."""
        return self.soc_config_factory()


def battery_condition(level: str) -> BatteryConfig:
    """Battery configuration for a named condition (``"full"`` or ``"low"``).

    ``full`` starts at 95 % state of charge (class Full), ``low`` at 20 %
    (class Low); ``medium`` and ``empty`` are provided for sweeps.
    """
    presets = {
        "full": 0.95,
        "high": 0.75,
        "medium": 0.45,
        "low": 0.20,
        "empty": 0.03,
    }
    try:
        soc0 = presets[level.lower()]
    except KeyError:
        raise ExperimentError(f"unknown battery condition {level!r}") from None
    return BatteryConfig(capacity_j=250.0, initial_state_of_charge=soc0)


def thermal_condition(level: str, ip_count: int = 1) -> ThermalConfig:
    """Thermal configuration for a named condition (``"low"`` or ``"high"``).

    The *high* condition models a hot environment: higher ambient and an
    initial die temperature just above the High threshold, so the DPM must
    actively cool the chip down before serving non-critical tasks.  The
    thermal resistance scales inversely with the number of IPs (a larger SoC
    ships with a package designed for its power budget).
    """
    resistance = 60.0 / max(1, ip_count)
    if level.lower() == "low":
        return ThermalConfig(
            ambient_c=35.0,
            initial_c=35.0,
            thermal_resistance_c_per_w=resistance,
        )
    if level.lower() == "high":
        # Hot environment: high ambient and an already warm die.  The busy
        # baseline crosses into the High class, so the DPM must actively keep
        # the chip below it (rows 2 and 4 of Table 1).
        return ThermalConfig(
            ambient_c=68.0,
            initial_c=70.0,
            thermal_resistance_c_per_w=resistance,
        )
    raise ExperimentError(f"unknown thermal condition {level!r}")


def scenario_a_workload(seed: int = 11, task_count: int = 40) -> Workload:
    """The common task sequence of the single-IP scenarios A1–A4.

    Half of the sequence is busy (short idle gaps), half is idle-heavy (long
    gaps), matching the paper's "in some sequences the IP is often busy, in
    some it is often in idle state"; priorities are mixed so the Table-1 rows
    that depend on the priority are all exercised.
    """
    if task_count < 2:
        raise ExperimentError("the scenario A workload needs at least two tasks")
    busy = high_activity_workload(task_count=task_count // 2, seed=seed, name="A-busy")
    idle_heavy = low_activity_workload(
        task_count=task_count - task_count // 2, seed=seed + 1, name="A-idle"
    )
    return Workload(items=list(busy.items) + list(idle_heavy.items), name="scenario-A")


def single_ip_scenario(
    name: str,
    battery: str,
    temperature: str,
    description: str = "",
    paper_row: Optional[Dict[str, float]] = None,
    workload_seed: int = 11,
    task_count: int = 40,
) -> Scenario:
    """One of the A scenarios: a single IP, PSM and LEM (no GEM)."""

    def specs() -> List[IpSpec]:
        return [
            IpSpec(
                name="ip1",
                workload=scenario_a_workload(seed=workload_seed, task_count=task_count),
                static_priority=1,
            )
        ]

    def config() -> SocConfig:
        return SocConfig(
            name=f"soc_{name}",
            battery=battery_condition(battery),
            thermal=thermal_condition(temperature, ip_count=1),
            use_gem=False,
        )

    return Scenario(
        name=name,
        description=description or f"single IP, battery {battery}, temperature {temperature}",
        ip_specs_factory=specs,
        soc_config_factory=config,
        max_time=sec(5),
        paper_row=paper_row,
    )


def multi_ip_scenario(
    name: str,
    battery: str,
    temperature: str,
    high_activity_ips: Sequence[int],
    description: str = "",
    paper_row: Optional[Dict[str, float]] = None,
    task_count: int = 24,
    seed: int = 21,
) -> Scenario:
    """One of the B/C scenarios: a GEM plus four IPs with static priorities 1-4.

    ``high_activity_ips`` lists the 1-based IP indices that receive the
    high-activity sequence; the others receive the low-activity sequence.
    """
    if not high_activity_ips:
        raise ExperimentError("at least one IP must have high activity")

    def specs() -> List[IpSpec]:
        result = []
        for index in range(1, 5):
            if index in high_activity_ips:
                workload = high_activity_workload(
                    task_count=task_count, seed=seed + index, name=f"ip{index}-busy"
                )
            else:
                workload = low_activity_workload(
                    task_count=task_count, seed=seed + index, name=f"ip{index}-idle"
                )
            result.append(IpSpec(name=f"ip{index}", workload=workload, static_priority=index))
        return result

    def config() -> SocConfig:
        return SocConfig(
            name=f"soc_{name}",
            battery=battery_condition(battery),
            thermal=thermal_condition(temperature, ip_count=4),
            use_gem=True,
        )

    return Scenario(
        name=name,
        description=description
        or f"GEM + 4 IPs, battery {battery}, temperature {temperature}, "
        f"high activity on IPs {sorted(high_activity_ips)}",
        ip_specs_factory=specs,
        soc_config_factory=config,
        max_time=sec(5),
        paper_row=paper_row,
    )


def paper_scenarios() -> List[Scenario]:
    """The six scenarios of the paper's Table 2, in order.

    Since the :mod:`repro.platform` migration these are built from the thin
    built-in :class:`~repro.platform.spec.PlatformSpec` objects of the named
    platform registry; the goldens of ``tests/golden/`` pin that this path
    is bit-identical to the original hardcoded factories.
    """
    from repro.platform.build import to_scenario
    from repro.platform.registry import paper_platforms

    return [to_scenario(spec) for spec in paper_platforms()]


def scenario_by_name(name: str) -> Scenario:
    """Look up a scenario by name: a Table-2 row or any registered platform."""
    from repro.platform.build import to_scenario
    from repro.platform.registry import has_platform, platform_by_name, platform_names

    if has_platform(name):
        return to_scenario(platform_by_name(name))
    raise ExperimentError(
        f"unknown scenario {name!r}; valid names: {', '.join(platform_names())}. "
        "Custom platforms can be registered with repro.platform.register_platform "
        "or loaded from a spec file with repro.platform.load_platform."
    )
