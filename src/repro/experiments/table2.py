"""Reproduction of the paper's Table 2 and simulation-speed figure.

:func:`reproduce_table2` runs every scenario (A1–A4, B, C) with the paper's
DPM and with the always-on baseline, returning one
:class:`~repro.analysis.metrics.ScenarioMetrics` per row.
:func:`table2_report` renders the side-by-side comparison with the numbers
printed in the paper, and :func:`simulation_speed_report` reproduces the
"35 Kcycle/s (sim. A) and 7.5 Kcycle/s (B and C)" throughput figure for this
implementation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import ScenarioMetrics
from repro.analysis.report import format_table, render_comparison, render_table2
from repro.dpm.controller import DpmSetup
from repro.experiments.runner import run_comparison, run_scenario
from repro.experiments.scenarios import Scenario, paper_scenarios

__all__ = [
    "reproduce_table2",
    "table2_report",
    "simulation_speed",
    "simulation_speed_report",
]


def reproduce_table2(
    scenarios: Optional[Sequence[Scenario]] = None,
    dpm: Optional[DpmSetup] = None,
    baseline: Optional[DpmSetup] = None,
    accuracy: Optional[str] = None,
) -> List[ScenarioMetrics]:
    """Run all Table-2 scenarios and return their metrics in paper order."""
    scenarios = list(scenarios) if scenarios is not None else paper_scenarios()
    return [
        run_comparison(scenario, dpm=dpm, baseline=baseline, accuracy=accuracy)
        for scenario in scenarios
    ]


def table2_report(
    results: Optional[Sequence[ScenarioMetrics]] = None,
    include_paper: bool = True,
) -> str:
    """Human-readable Table-2 report (optionally next to the paper's values)."""
    if results is None:
        results = reproduce_table2()
    if include_paper:
        return render_comparison(results)
    return render_table2(results)


def simulation_speed(
    scenarios: Optional[Sequence[Scenario]] = None,
    dpm: Optional[DpmSetup] = None,
    accuracy: Optional[str] = None,
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Simulation throughput (kilo clock cycles per wall-clock second) per scenario.

    ``backend`` selects the kernel event-queue implementation (``python``,
    ``native`` or ``auto``; ``None`` consults ``REPRO_SIM_BACKEND``).
    """
    scenarios = list(scenarios) if scenarios is not None else paper_scenarios()
    dpm = dpm or DpmSetup.paper()
    speeds: Dict[str, float] = {}
    for scenario in scenarios:
        artefacts = run_scenario(scenario, dpm, accuracy=accuracy, backend=backend)
        speeds[scenario.name] = artefacts.kilocycles_per_second()
    return speeds


def simulation_speed_report(speeds: Optional[Dict[str, float]] = None) -> str:
    """Render the simulation-speed figure (paper: 35 Kcycle/s A, 7.5 Kcycle/s B/C)."""
    if speeds is None:
        speeds = simulation_speed()
    paper_reference = {"A1": 35.0, "A2": 35.0, "A3": 35.0, "A4": 35.0, "B": 7.5, "C": 7.5}
    rows = [
        [name, f"{paper_reference.get(name, float('nan')):.1f}", f"{value:.1f}"]
        for name, value in speeds.items()
    ]
    return format_table(
        ["Scenario", "Paper (Kcycle/s)", "This implementation (Kcycle/s)"],
        rows,
        title="Simulation speed",
    )
