"""Dynamic cross-validation of the static rules and reachability analyses.

The lint rules analyzer (:mod:`repro.lint.rules`) claims some rules are
*statically* unreachable — no input the platform can produce will ever reach
them under first-match semantics.  This module validates that claim against
reality: it runs traced simulations, replays every ``lem.decision`` event in
the :mod:`repro.obs` stream through
:meth:`~repro.dpm.rules.RuleTable.first_match_index`, and checks that the
statically-dead rules fired **zero** times.

The trajectory-reachability engine (:mod:`repro.lint.reach`) makes the
stronger claim that its interval abstraction over-approximates every
context a run can present.  The same traced replay enforces it: each
observed decision context must lie **inside** the static reachable
envelope, and every rule the envelope declares trajectory-dead must have
fired zero times.  A dynamically observed context outside the abstraction
is a hard violation — soundness is part of the test contract, not a hope.

Directions of confidence:

* a statically-unreachable rule that fires dynamically would be a lint
  false positive (the analyzer's lattice enumeration is wrong);
* an observed context escaping the reachable envelope would be a reach
  false negative (the abstract interpretation is unsound);
* an injected shadowed rule that lint flags *and* never fires confirms a
  true positive end to end (see the lint test suite).

The check is cheap enough to run over all six paper platforms in CI.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.battery.status import BatteryLevel
from repro.dpm.levels import RuleContext
from repro.dpm.rules import RuleTable, paper_rule_table
from repro.errors import ExperimentError
from repro.soc.bus import BusLevel
from repro.soc.task import TaskPriority
from repro.thermal.level import TemperatureLevel

__all__ = [
    "CrosscheckResult",
    "crosscheck_paper_platforms",
    "crosscheck_scenario",
    "decision_contexts",
]

#: The platforms the CI cross-check sweeps (the paper's six scenarios).
PAPER_SCENARIO_NAMES = ("A1", "A2", "A3", "A4", "B", "C")


@dataclass
class CrosscheckResult:
    """Static-vs-dynamic agreement for one traced scenario run."""

    scenario: str
    table_name: str
    decision_count: int
    #: rule index -> number of decisions it won at runtime
    fire_counts: Dict[int, int] = field(default_factory=dict)
    #: rule indices the static analysis declared unreachable
    unreachable: Tuple[int, ...] = ()
    #: rule indices the reach envelope declared trajectory-dead
    trajectory_dead: Tuple[int, ...] = ()
    #: True when the reach-envelope containment check ran
    reach_checked: bool = False
    #: human-readable disagreements (empty when static and dynamic agree)
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no statically-dead rule fired and (when checked) every
        observed context stayed inside the reachable envelope."""
        return not self.violations

    def describe(self) -> str:
        """One-line summary for CLI/CI output."""
        status = "ok" if self.ok else f"{len(self.violations)} violation(s)"
        fired = sum(1 for count in self.fire_counts.values() if count)
        reach = (
            f", {len(self.trajectory_dead)} trajectory-dead, envelope checked"
            if self.reach_checked else ""
        )
        return (
            f"{self.scenario}: {self.decision_count} decisions, "
            f"{fired} rule(s) fired, {len(self.unreachable)} statically "
            f"unreachable{reach} -> {status}"
        )


def decision_contexts(trace_path: "Path | str") -> List[RuleContext]:
    """Rebuild the :class:`RuleContext` of every ``lem.decision`` event in a
    JSONL trace (in event order)."""
    contexts: List[RuleContext] = []
    with Path(trace_path).open(encoding="utf-8") as stream:
        for line in stream:
            line = line.strip()
            if not line:
                continue
            event = json.loads(line)
            if event.get("kind") != "lem.decision":
                continue
            try:
                contexts.append(RuleContext(
                    priority=TaskPriority(event["priority"]),
                    battery=BatteryLevel(event["battery"]),
                    temperature=TemperatureLevel(event["temperature"]),
                    other_ip_energy_j=float(event.get("other_ip_energy_j", 0.0)),
                    bus=BusLevel(event.get("bus", "low")),
                ))
            except (KeyError, ValueError) as error:
                raise ExperimentError(
                    f"{trace_path}: malformed lem.decision event: {error}"
                ) from error
    return contexts


def _replay(table: RuleTable, contexts: Sequence[RuleContext]) -> Dict[int, int]:
    """Which rule wins each recorded decision, as index -> count."""
    counts: Dict[int, int] = {}
    for context in contexts:
        index = table.first_match_index(context)
        if index is not None:
            counts[index] = counts.get(index, 0) + 1
    return counts


def _resolve_spec(scenario, name: str):
    """The :class:`PlatformSpec` behind ``scenario``, if one exists."""
    from repro.platform.registry import has_platform, platform_by_name
    from repro.platform.spec import PlatformSpec

    if isinstance(scenario, PlatformSpec):
        return scenario
    if isinstance(scenario, str) and has_platform(scenario):
        return platform_by_name(scenario)
    if has_platform(name):
        return platform_by_name(name)
    return None


def crosscheck_scenario(
    scenario,
    table: Optional[RuleTable] = None,
    trace_dir: "Path | str | None" = None,
    reach: bool = True,
) -> CrosscheckResult:
    """Run one scenario traced and compare fired rules against the static
    unreachability analysis.

    ``scenario`` is anything :func:`~repro.experiments.runner.run_scenario`
    accepts (a name, a :class:`~repro.experiments.scenarios.Scenario` or a
    :class:`~repro.platform.spec.PlatformSpec`).  ``table`` defaults to the
    spec's own rule table when the scenario is a platform spec with custom
    ``policy.rules``, and to the paper's Table 1 otherwise — i.e. the table
    the run actually consulted.  ``trace_dir`` holds the throwaway JSONL
    trace (default: the current directory).

    With ``reach=True`` (the default) and a resolvable platform spec, the
    trajectory envelope (:func:`repro.lint.reach.compute_reach`) is also
    validated: every observed decision context must be contained in the
    static reachable set, and trajectory-dead rules must not have fired.
    Either disagreement is a violation — the soundness contract is hard.
    """
    from repro.experiments.runner import run_scenario
    from repro.obs.session import TraceRequest
    from repro.platform.spec import PlatformSpec

    if table is None:
        if isinstance(scenario, PlatformSpec):
            from repro.lint import spec_rule_table

            table = spec_rule_table(scenario)
            if table is None:
                raise ExperimentError(
                    f"platform {scenario.name!r} uses a non-rule-based policy; "
                    "there is no rule table to cross-check"
                )
        else:
            table = paper_rule_table()
    name = getattr(scenario, "name", str(scenario))
    reach_result = None
    if reach:
        spec = _resolve_spec(scenario, name)
        if spec is not None:
            from repro.lint import build_model
            from repro.lint.reach import compute_reach

            reach_result = compute_reach(build_model(spec))
    directory = Path(trace_dir) if trace_dir is not None else Path(".")
    trace_path = directory / f"{name}_crosscheck_trace.jsonl"
    request = TraceRequest(
        format="jsonl", path=str(trace_path), events=("lem.decision",)
    )
    artifacts = run_scenario(scenario, trace=request)
    try:
        contexts = decision_contexts(artifacts.trace_path or trace_path)
    finally:
        trace_path.unlink(missing_ok=True)
    fire_counts = _replay(table, contexts)
    unreachable = tuple(table.unreachable_rules())
    violations = [
        (
            f"rule {index} ({table.rules[index].describe()}) is statically "
            f"unreachable but won {fire_counts[index]} decision(s)"
        )
        for index in unreachable
        if fire_counts.get(index)
    ]
    trajectory_dead: Tuple[int, ...] = ()
    if reach_result is not None:
        escapes = [
            context for context in contexts
            if not reach_result.is_reachable(context)
        ]
        for context in escapes[:5]:
            violations.append(
                f"observed context escapes the static reachable envelope: "
                f"{context.describe()}"
            )
        if len(escapes) > 5:
            violations.append(
                f"... and {len(escapes) - 5} more context(s) escaped"
            )
        live = reach_result.live_rule_indices(table)
        trajectory_dead = tuple(
            index for index in range(len(table.rules)) if index not in live
        )
        for index in trajectory_dead:
            if fire_counts.get(index):
                violations.append(
                    f"rule {index} ({table.rules[index].describe()}) is "
                    f"trajectory-dead per the reach envelope but won "
                    f"{fire_counts[index]} decision(s)"
                )
    return CrosscheckResult(
        scenario=name,
        table_name=table.name,
        decision_count=len(contexts),
        fire_counts=fire_counts,
        unreachable=unreachable,
        trajectory_dead=trajectory_dead,
        reach_checked=reach_result is not None,
        violations=violations,
    )


def crosscheck_paper_platforms(
    names: Optional[Sequence[str]] = None,
    trace_dir: "Path | str | None" = None,
) -> List[CrosscheckResult]:
    """Cross-check every paper scenario (default: all six) against Table 1."""
    return [
        crosscheck_scenario(name, trace_dir=trace_dir)
        for name in (names if names is not None else PAPER_SCENARIO_NAMES)
    ]
