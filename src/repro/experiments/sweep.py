"""Parameter sweeps and ablations.

Beyond the six Table-2 rows, the library provides the sweeps a user of the
architecture would actually run:

* :func:`condition_sweep` — the full battery-level x temperature-level grid
  for the single-IP scenario (generalises A1–A4);
* :func:`policy_ablation` — the paper's rule-based policy against the
  always-on, greedy-sleep, fixed-timeout and oracle baselines on one scenario;
* :func:`predictor_ablation` — the rule-based policy with each idle-time
  predictor, isolating the value of better idle prediction.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.analysis.metrics import ScenarioMetrics
from repro.dpm.controller import DpmSetup
from repro.experiments.runner import run_comparison
from repro.experiments.scenarios import Scenario, single_ip_scenario
from repro.sim.simtime import ms

__all__ = ["condition_sweep", "policy_ablation", "predictor_ablation"]


def condition_sweep(
    battery_levels: Sequence[str] = ("full", "medium", "low"),
    temperature_levels: Sequence[str] = ("low", "high"),
    dpm: Optional[DpmSetup] = None,
    task_count: int = 30,
) -> List[ScenarioMetrics]:
    """Battery x temperature grid on the single-IP workload.

    Scenario names follow the pattern ``"<battery>/<temperature>"``.
    """
    results = []
    for battery in battery_levels:
        for temperature in temperature_levels:
            scenario = single_ip_scenario(
                name=f"{battery}/{temperature}",
                battery=battery,
                temperature=temperature,
                task_count=task_count,
            )
            results.append(run_comparison(scenario, dpm=dpm))
    return results


def policy_ablation(
    scenario: Optional[Scenario] = None,
    setups: Optional[Sequence[DpmSetup]] = None,
) -> Dict[str, ScenarioMetrics]:
    """Compare DPM setups on one scenario (default: the A1 conditions).

    The always-on configuration is the comparison *baseline* for every entry,
    so its own row shows ~0 % saving by construction and serves as a sanity
    check.
    """
    scenario = scenario or single_ip_scenario("ablation", "full", "low")
    if setups is None:
        setups = [
            DpmSetup.paper(),
            DpmSetup.greedy_sleep(),
            DpmSetup.fixed_timeout(ms(2)),
            DpmSetup.oracle(),
            DpmSetup.always_on(),
        ]
    results: Dict[str, ScenarioMetrics] = {}
    for setup in setups:
        results[setup.name] = run_comparison(scenario, dpm=setup)
    return results


def predictor_ablation(
    scenario: Optional[Scenario] = None,
    predictor_kinds: Sequence[str] = ("fixed", "last-value", "ewma", "adaptive"),
) -> Dict[str, ScenarioMetrics]:
    """Compare idle-time predictors under the paper's rule-based policy."""
    scenario = scenario or single_ip_scenario("predictor-ablation", "full", "low")
    results: Dict[str, ScenarioMetrics] = {}
    for kind in predictor_kinds:
        setup = DpmSetup.with_predictor(kind)
        results[kind] = run_comparison(scenario, dpm=setup)
    return results
