"""Experiment runner.

:func:`run_scenario` builds and simulates one scenario with one DPM setup and
returns the raw artefacts (SoC, executions, wall-clock figures).
:func:`run_comparison` runs the scenario twice — once with the DPM under
study and once with the paper's reference configuration (maximum frequency,
never sleep) — and reduces the two runs to the Table-2 metrics.

Every runner accepts, in place of a :class:`Scenario`, a
:class:`~repro.platform.spec.PlatformSpec` (built on the fly) or a scenario
name (resolved through the named platform registry).  For platform-backed
scenarios a ``None`` setup defers to the spec's own
:class:`~repro.platform.spec.PolicyDef` (when present) and the spec's GEM
tunables are applied to whichever setup runs.
"""

from __future__ import annotations

import time as _wallclock
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.metrics import ScenarioMetrics, compare_runs
from repro.dpm.controller import DpmSetup
from repro.errors import ExperimentError
from repro.experiments.scenarios import Scenario
from repro.power.states import PowerState
from repro.sim.accuracy import AccuracyMode
from repro.sim.simtime import SimTime
from repro.soc.soc import SoC, build_soc
from repro.soc.task import TaskExecution

__all__ = [
    "BaselineFigures",
    "RunArtifacts",
    "run_baseline",
    "run_comparison",
    "run_scenario",
]


@dataclass
class BaselineFigures:
    """The figures of a baseline run that Table-2 metrics actually consume.

    Unlike :class:`RunArtifacts` this is plain picklable data, so a campaign
    can compute the baseline of a (scenario, accuracy-mode) cell once and
    share it across every job of the grid.
    """

    scenario: str
    setup: str
    accuracy: str
    total_energy_j: float
    average_rise_c: float
    peak_temperature_c: float
    all_tasks_completed: bool

    def as_dict(self) -> Dict[str, object]:
        """Plain-dict view for JSON storage."""
        return {
            "scenario": self.scenario,
            "setup": self.setup,
            "accuracy": self.accuracy,
            "total_energy_j": self.total_energy_j,
            "average_rise_c": self.average_rise_c,
            "peak_temperature_c": self.peak_temperature_c,
            "all_tasks_completed": self.all_tasks_completed,
        }

    @staticmethod
    def from_dict(value) -> "BaselineFigures":
        """Rebuild from :meth:`as_dict` output."""
        return BaselineFigures(
            scenario=str(value["scenario"]),
            setup=str(value["setup"]),
            accuracy=str(value.get("accuracy", "exact")),
            total_energy_j=float(value["total_energy_j"]),
            average_rise_c=float(value["average_rise_c"]),
            peak_temperature_c=float(value["peak_temperature_c"]),
            all_tasks_completed=bool(value["all_tasks_completed"]),
        )


@dataclass
class RunArtifacts:
    """Everything produced by one simulated run of a scenario."""

    scenario: str
    setup: str
    soc: SoC
    end_time: SimTime
    wall_clock_s: float
    executions: List[TaskExecution] = field(default_factory=list)
    accuracy: AccuracyMode = AccuracyMode.EXACT
    #: Where the run's event/waveform trace was written (None when untraced).
    trace_path: Optional[Path] = None
    #: Kernel backend the run resolved to ("python" or "native").
    backend: str = "python"
    #: Why an explicit native request fell back (empty when it did not).
    backend_reason: str = ""

    @property
    def total_energy_j(self) -> float:
        """SoC energy consumed during the run."""
        return self.soc.total_energy_j()

    @property
    def average_rise_c(self) -> float:
        """Average chip temperature rise above ambient during the run."""
        return self.soc.thermal.average_rise_c

    @property
    def peak_temperature_c(self) -> float:
        """Peak chip temperature reached during the run."""
        return self.soc.thermal.peak_c

    @property
    def all_tasks_completed(self) -> bool:
        """True when every IP drained its workload within the time budget."""
        return self.soc.all_done

    def cycles_simulated(self) -> float:
        """Simulated time expressed in reference (ON1) clock cycles."""
        characterization = self.soc.instances[0].characterization
        period = characterization.operating_points.point(PowerState.ON1).clock_period
        return self.end_time / period

    def kilocycles_per_second(self) -> float:
        """Simulation speed in kilo clock cycles per wall-clock second."""
        if self.wall_clock_s <= 0.0:
            return 0.0
        return self.cycles_simulated() / self.wall_clock_s / 1e3

    def bus_summary(self) -> Optional[Dict[str, float]]:
        """Shared-bus figures of the run, or ``None`` on bus-less platforms."""
        bus = self.soc.bus
        if bus is None:
            return None
        return {
            "occupancy_pct": 100.0 * bus.occupancy(),
            "transfer_count": float(bus.stats.transfer_count),
            "words_transferred": float(bus.stats.words_transferred),
            "average_wait_us": bus.stats.average_wait().seconds * 1e6,
            "cancelled_count": float(bus.stats.cancelled_count),
        }

    def per_ip_summary(self) -> Dict[str, Dict[str, float]]:
        """Per-IP energy, task count and mean delay overhead."""
        summary: Dict[str, Dict[str, float]] = {}
        for instance in self.soc.instances:
            executions = instance.ip.executions
            overheads = [execution.delay_overhead for execution in executions]
            summary[instance.spec.name] = {
                "energy_j": instance.ip.energy_account.total_j,
                "tasks": float(len(executions)),
                "mean_delay_overhead_pct": (
                    100.0 * sum(overheads) / len(overheads) if overheads else 0.0
                ),
                "transitions": float(instance.psm.transition_count),
            }
        return summary


def _as_scenario(scenario) -> Scenario:
    """Accept a :class:`Scenario`, a platform spec, or a scenario name."""
    if isinstance(scenario, Scenario):
        return scenario
    from repro.platform.build import to_scenario
    from repro.platform.spec import PlatformSpec

    if isinstance(scenario, PlatformSpec):
        return to_scenario(scenario)
    if isinstance(scenario, str):
        from repro.experiments.scenarios import scenario_by_name

        return scenario_by_name(scenario)
    raise ExperimentError(
        f"cannot run {scenario!r}: expected a Scenario, a PlatformSpec or a "
        "scenario/platform name"
    )


def _resolve_trace_request(scenario: Scenario, trace):
    """Turn run_scenario's ``trace`` argument into a TraceRequest or None.

    ``None`` defers to the scenario's platform spec (the ``trace:`` section
    of a :class:`~repro.platform.spec.PlatformSpec`); ``False`` disables
    tracing regardless of the spec; a
    :class:`~repro.obs.session.TraceRequest` is used as-is.
    """
    if trace is False:
        return None
    if trace is None:
        spec = getattr(scenario, "spec", None)
        trace_def = getattr(spec, "trace", None)
        if trace_def is None or not trace_def.enabled:
            # The common case: repro.obs stays entirely unimported.
            return None
        from repro.obs.session import TraceRequest

        return TraceRequest.from_trace_def(trace_def)
    from repro.obs.session import TraceRequest

    if isinstance(trace, TraceRequest):
        return trace
    raise ExperimentError(
        f"trace must be a TraceRequest, None or False, got {trace!r}"
    )


def run_scenario(
    scenario: "Scenario | str",
    setup: Optional[DpmSetup] = None,
    accuracy: "AccuracyMode | str | None" = None,
    trace=None,
    backend: Optional[str] = None,
) -> RunArtifacts:
    """Build and simulate ``scenario`` once under ``setup`` (default: paper DPM).

    ``trace`` controls event tracing: ``None`` (default) follows the
    platform spec's ``trace:`` section when the scenario came from one,
    ``False`` forces tracing off, and a
    :class:`~repro.obs.session.TraceRequest` traces the run explicitly.

    ``backend`` selects the kernel backend (``"python"``, ``"native"`` or
    ``"auto"``; ``None`` consults ``REPRO_SIM_BACKEND``).  The resolved
    backend — and the fallback reason, when a native request could not be
    honoured — is recorded on the returned :class:`RunArtifacts`.
    """
    from repro.platform.build import platform_setup

    scenario = _as_scenario(scenario)
    setup = platform_setup(scenario, setup, DpmSetup.paper, use_policy=True)
    mode = AccuracyMode.from_name(accuracy)
    request = _resolve_trace_request(scenario, trace)
    specs = scenario.build_specs()
    config = scenario.build_config()
    soc = build_soc(specs, config, setup, accuracy=mode, backend=backend)
    session = None
    if request is not None:
        from repro.obs.session import TraceSession

        session = TraceSession(request, stem=scenario.name)
        session.attach(soc)
    wall_start = _wallclock.perf_counter()  # repro-lint: allow[DET-WALLCLOCK]
    end_time = soc.run_until_done(max_time=scenario.max_time)
    wall_elapsed = _wallclock.perf_counter() - wall_start  # repro-lint: allow[DET-WALLCLOCK]
    trace_path = None
    if session is not None:
        trace_path = session.finish(end_time=end_time)
    executions: List[TaskExecution] = []
    for instance in soc.instances:
        executions.extend(instance.ip.executions)
    if not executions:
        raise ExperimentError(
            f"scenario {scenario.name!r} executed no tasks under setup {setup.name!r}"
        )
    resolution = soc.simulator.backend_resolution
    return RunArtifacts(
        scenario=scenario.name,
        setup=setup.name,
        soc=soc,
        end_time=end_time,
        wall_clock_s=wall_elapsed,
        executions=executions,
        accuracy=mode,
        trace_path=trace_path,
        backend=resolution.backend,
        backend_reason=resolution.reason,
    )


def run_baseline(
    scenario: "Scenario | str",
    baseline: Optional[DpmSetup] = None,
    accuracy: "AccuracyMode | str | None" = None,
    backend: Optional[str] = None,
) -> BaselineFigures:
    """Run the reference configuration once and reduce it to plain figures."""
    from repro.platform.build import platform_setup

    scenario = _as_scenario(scenario)
    baseline = platform_setup(scenario, baseline, DpmSetup.always_on)
    mode = AccuracyMode.from_name(accuracy)
    # The baseline never traces: a spec-enabled trace would clobber the DPM
    # run's output file and the reference run is not the run under study.
    run = run_scenario(scenario, baseline, accuracy=mode, trace=False, backend=backend)
    return BaselineFigures(
        scenario=scenario.name,
        setup=baseline.name,
        accuracy=mode.value,
        total_energy_j=run.total_energy_j,
        average_rise_c=run.average_rise_c,
        peak_temperature_c=run.peak_temperature_c,
        all_tasks_completed=run.all_tasks_completed,
    )


def run_comparison(
    scenario: "Scenario | str",
    dpm: Optional[DpmSetup] = None,
    baseline: Optional[DpmSetup] = None,
    accuracy: "AccuracyMode | str | None" = None,
    baseline_figures: Optional[BaselineFigures] = None,
    trace=None,
    backend: Optional[str] = None,
) -> ScenarioMetrics:
    """Run ``scenario`` with the DPM and with the baseline; return Table-2 metrics.

    ``baseline_figures`` (e.g. from a campaign's shared-baseline cache)
    skips the baseline run entirely; runs are deterministic, so the shared
    figures are identical to a freshly computed baseline.

    ``trace`` applies to the DPM run only (semantics as in
    :func:`run_scenario`); the baseline run is never traced.  ``backend``
    applies to both runs.
    """
    from repro.platform.build import platform_setup

    scenario = _as_scenario(scenario)
    dpm = platform_setup(scenario, dpm, DpmSetup.paper, use_policy=True)
    baseline = platform_setup(scenario, baseline, DpmSetup.always_on)
    mode = AccuracyMode.from_name(accuracy)
    dpm_run = run_scenario(scenario, dpm, accuracy=mode, trace=trace, backend=backend)
    if baseline_figures is None:
        baseline_figures = run_baseline(scenario, baseline, accuracy=mode, backend=backend)
    if not dpm_run.all_tasks_completed:
        raise ExperimentError(
            f"scenario {scenario.name!r}: the DPM run did not finish within the time budget"
        )
    if not baseline_figures.all_tasks_completed:
        raise ExperimentError(
            f"scenario {scenario.name!r}: the baseline run did not finish within the time budget"
        )
    metrics = compare_runs(
        scenario=scenario.name,
        dpm_energy_j=dpm_run.total_energy_j,
        baseline_energy_j=baseline_figures.total_energy_j,
        dpm_rise_c=dpm_run.average_rise_c,
        baseline_rise_c=baseline_figures.average_rise_c,
        dpm_executions=dpm_run.executions,
        dpm_peak_c=dpm_run.peak_temperature_c,
        baseline_peak_c=baseline_figures.peak_temperature_c,
        simulated_time_s=dpm_run.end_time.seconds,
        wall_clock_s=dpm_run.wall_clock_s,
        kilocycles_per_second=dpm_run.kilocycles_per_second(),
        per_ip=dpm_run.per_ip_summary(),
        bus=dpm_run.bus_summary(),
    )
    return metrics
