"""repro — a Python reproduction of the DATE'05 dynamic power management
architecture by M. Conti ("SystemC Analysis of a New Dynamic Power Management
Architecture").

The package is organised in layers:

* :mod:`repro.sim` — a SystemC-like discrete-event simulation kernel
  (modules, signals, ports, processes, delta cycles, tracing).
* :mod:`repro.power` — ACPI-style power states, DVFS operating points,
  transition cost tables, break-even analysis, energy accounting and the
  Power State Machine (PSM).
* :mod:`repro.battery` / :mod:`repro.thermal` — battery and lumped-RC
  thermal models with the quantised status classes the DPM rules consume.
* :mod:`repro.soc` — tasks, workload generators, functional IP traffic
  generators, a shared bus and a SoC builder.
* :mod:`repro.dpm` — the paper's contribution: the Table-1 rule engine,
  the Local Energy Manager (LEM), the Global Energy Manager (GEM), idle
  predictors and baseline policies.
* :mod:`repro.analysis` — metrics (energy saving, temperature reduction,
  delay overhead) and report rendering.
* :mod:`repro.experiments` — the scenario catalogue (A1–A4, B, C) and the
  runners that regenerate the paper's Table 2 and simulation-speed figure.
* :mod:`repro.platform` — declarative platform specifications: user-defined
  SoCs (IPs, workloads, operating points, PSMs, battery/thermal, GEM,
  policy) as validated, JSON/TOML-serializable :class:`PlatformSpec` trees,
  a fluent builder and a named registry in which the six paper scenarios
  are thin built-in specs.
* :mod:`repro.campaign` — parallel experiment campaigns: declarative
  scenario x setup x seed grids (JSON/TOML or Python, including platform
  specs by file or inline), a multiprocessing executor with per-job
  timeouts and failure capture, a content-addressed result store with
  resume, and aggregation back into the analysis layer.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
